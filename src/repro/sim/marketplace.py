"""The marketplace simulation driver.

Runs one workload against a full deployment in either mode:

- ``mode="p2drm"`` — the paper's system: anonymous purchases under
  fresh blind-certified pseudonyms, transfers via anonymous licences;
- ``mode="baseline"`` — identity-based DRM: named accounts, ledger
  payments, named transfers.

Both modes execute the *same* event stream (same seed → same users,
contents, actions, timing), so the providers' resulting records differ
only by the privacy layer — which is the comparison experiments E8 and
E10 report.  The simulator additionally keeps the **ground truth** map
(pseudonym fingerprint → card id) that only an omniscient observer
has; attackers are scored against it, never given it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..baseline.identity_drm import (
    BaselineProvider,
    BaselineUser,
    baseline_purchase,
    baseline_transfer,
)
from ..core.identity import SmartCard
from ..core.system import Deployment, build_deployment
from ..crypto.backend import backend_name
from ..errors import ReproError
from .workload import (
    ACTION_BUY,
    ACTION_PLAY,
    ACTION_REDEEM,
    WorkloadConfig,
    WorkloadGenerator,
)

MODE_P2DRM = "p2drm"
MODE_BASELINE = "baseline"


@dataclass
class SimulationReport:
    """What one run produced and what the operator ended up knowing."""

    mode: str
    config: WorkloadConfig
    purchases: int = 0
    plays: int = 0
    transfers: int = 0
    redemptions: int = 0          # bearer licences personalized
    batched_redemptions: int = 0  # …of which through redeem_batch
    pending_redemptions: int = 0  # still parked when the run ended
    denials: int = 0
    skipped: int = 0
    sim_seconds: int = 0
    backend: str = ""  # arithmetic backend the run executed under
    #: The provider's closing ledger balance — read back through the
    #: BankSurface (gateway/socket) in service mode, straight from the
    #: in-process bank otherwise, so every mode reconciles revenue
    #: against the same durable money layer the deposits landed in.
    provider_revenue: int = 0
    ground_truth: dict[bytes, bytes] = field(default_factory=dict)
    user_of_card: dict[bytes, str] = field(default_factory=dict)
    operator_knowledge: dict = field(default_factory=dict)

    def summary(self) -> dict:
        return {
            "mode": self.mode,
            "events": self.purchases + self.plays + self.transfers,
            "purchases": self.purchases,
            "plays": self.plays,
            "transfers": self.transfers,
            "redemptions": self.redemptions,
            "batched_redemptions": self.batched_redemptions,
            "pending_redemptions": self.pending_redemptions,
            "denials": self.denials,
            "skipped": self.skipped,
            "sim_seconds": self.sim_seconds,
            "backend": self.backend,
            "provider_revenue": self.provider_revenue,
            **{f"operator_{k}": v for k, v in self.operator_knowledge.items()},
        }


class MarketplaceSimulator:
    """Drive one workload against one deployment mode.

    ``service_workers > 0`` (p2drm mode only) swaps the in-process
    provider for the sharded multi-process service layer: the same
    event stream is routed through a
    :class:`~repro.service.gateway.ServiceGateway` over
    ``service_workers`` desk processes and ``service_shards`` store
    shards.  ``service_transport`` picks the transport in front of the
    pool: ``"queue"`` (default) drives the gateway's in-process
    queues; ``"tcp"`` additionally starts an asyncio
    :class:`~repro.service.netserver.NetServer` on localhost and
    drives every protocol call through a
    :class:`~repro.service.netserver.NetClient` — the whole event
    stream crosses real sockets.  ``service_max_inflight`` bounds the
    pool's admission (the sim's closed-loop callers never trip a sane
    ceiling; the knob exists so overload experiments reuse this
    harness).  ``service_tracing`` turns on end-to-end span capture
    (:mod:`repro.service.tracing`) with tail-based keep at
    ``service_trace_threshold`` seconds — the privacy tests run a full
    sim with tracing on and audit every recorded span.  The report schema is unchanged —
    the privacy experiments read the same operator knowledge either
    way (mined from the operator-side shard stores, exactly what a
    real operator would hold) — so the sim doubles as the transport
    layer's conformance harness.  Call :meth:`close` (or use the
    instance as a context manager) to stop the pool and delete the
    shard files.
    """

    def __init__(
        self,
        config: WorkloadConfig,
        *,
        mode: str = MODE_P2DRM,
        rsa_bits: int = 768,
        group_name: str = "test-512",
        service_workers: int = 0,
        service_shards: int | None = None,
        service_transport: str = "queue",
        service_max_inflight: int | None = None,
        service_tracing: bool = False,
        service_trace_threshold: float = 0.25,
        service_fault_spec=None,
        service_fault_seed: int = 0,
    ):
        if mode not in (MODE_P2DRM, MODE_BASELINE):
            raise ValueError(f"unknown mode {mode!r}")
        if service_workers and mode != MODE_P2DRM:
            raise ValueError("service_workers requires p2drm mode")
        if service_transport not in ("queue", "tcp", "tcp-chaos"):
            raise ValueError(f"unknown service transport {service_transport!r}")
        if service_transport in ("tcp", "tcp-chaos") and not service_workers:
            raise ValueError(
                f"service_transport={service_transport!r} requires"
                " service_workers > 0"
            )
        self.config = config
        self.mode = mode
        self.workload = WorkloadGenerator(config)
        self.deployment: Deployment = build_deployment(
            seed=f"marketplace-{config.seed}",
            rsa_bits=rsa_bits,
            group_name=group_name,
        )
        self._content_ids = [f"content-{i:04d}" for i in range(config.n_contents)]
        #: Bearer licences handed over but not yet personalized:
        #: ``(receiver index, AnonymousLicense)``.  Only populated in
        #: deferred-redemption runs (ACTION_REDEEM carries weight).
        self._pending_redemptions: list[tuple[int, object]] = []
        self._gateway = None
        self._net_server = None
        self._net_client = None
        self._chaos_proxy = None
        self._service_dir: str | None = None
        self._service_tracing = bool(service_tracing)
        self._publish_catalog()
        if mode == MODE_P2DRM:
            self.provider = self.deployment.provider
            self._setup_p2drm_users()
            if service_workers:
                import tempfile

                from ..service.gateway import build_gateway

                self._service_dir = tempfile.mkdtemp(prefix="p2drm-sim-shards-")
                try:
                    self._gateway = build_gateway(
                        self.deployment,
                        self._service_dir,
                        workers=service_workers,
                        shards=service_shards,
                        max_inflight=service_max_inflight,
                        tracing=service_tracing,
                        trace_threshold=service_trace_threshold,
                    )
                    if service_transport == "tcp":
                        from ..service.netserver import NetClient, NetServer

                        self._net_server = NetServer(self._gateway)
                        self._net_client = NetClient(self._net_server.start())
                    elif service_transport == "tcp-chaos":
                        # The adversarial-network arm: the same socket
                        # stack, but every frame crosses a seeded
                        # fault-injection proxy and the client is the
                        # reconnecting/retrying one — the sim's event
                        # stream doubles as a robustness conformance
                        # run (same report, flaky wire).
                        from ..service.faults import (
                            ChaosListener,
                            FaultPlan,
                            FaultSpec,
                        )
                        from ..service.netserver import NetServer
                        from ..service.retry import ReconnectingNetClient

                        spec = (
                            service_fault_spec
                            if service_fault_spec is not None
                            else FaultSpec(
                                reset_rate=0.02,
                                truncate_rate=0.01,
                                drop_rate=0.02,
                                duplicate_rate=0.02,
                                delay_rate=0.05,
                            )
                        )
                        self._net_server = NetServer(self._gateway)
                        self._chaos_proxy = ChaosListener(
                            self._net_server.start(),
                            FaultPlan(spec, seed=service_fault_seed),
                        )
                        self._net_client = ReconnectingNetClient(
                            self._chaos_proxy.address, timeout=10.0
                        )
                except BaseException:
                    # __init__ never completes, so close() would never
                    # run — reclaim the pool and shard directory here.
                    import shutil

                    self._teardown_service()
                    shutil.rmtree(self._service_dir, ignore_errors=True)
                    self._service_dir = None
                    raise
                # Protocol traffic goes through the chosen transport;
                # operator-side analytics always read the shard stores
                # via the gateway (see ``_operator_view``).
                self.provider = self._net_client or self._gateway
        else:
            self.provider = BaselineProvider(
                rng=self.deployment.rng.fork("baseline-provider"),
                clock=self.deployment.clock,
                bank=self.deployment.bank,
                license_key_bits=rsa_bits,
            )
            self._publish_catalog(self.provider)
            self._setup_baseline_users()
        self.device = self._make_device()

    def _teardown_service(self) -> None:
        """Close client, server and pool in dependency order."""
        if self._net_client is not None:
            self._net_client.close()
            self._net_client = None
        if self._chaos_proxy is not None:
            self._chaos_proxy.close()
            self._chaos_proxy = None
        if self._net_server is not None:
            self._net_server.close()
            self._net_server = None
        if self._gateway is not None:
            self._gateway.close()
            self._gateway = None
        if self._service_tracing:
            # The recorder is a process-global sink installed by
            # build_gateway; uninstall it so a traced sim cannot leak
            # spans into whatever runs next in this process.
            from ..service import tracing

            tracing.disable()
            self._service_tracing = False

    def close(self) -> None:
        """Stop the service stack (if any) and delete its shard files."""
        self._teardown_service()
        if self._service_dir is not None:
            import shutil

            shutil.rmtree(self._service_dir, ignore_errors=True)
            self._service_dir = None

    def __enter__(self) -> "MarketplaceSimulator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- setup ------------------------------------------------------------

    def _publish_catalog(self, provider=None) -> None:
        target = provider or self.deployment.provider
        for index, content_id in enumerate(self._content_ids):
            target.publish(
                content_id,
                f"media-{index}".encode() * 8,
                title=f"Title {index}",
                price=self.workload.pick_price() if provider is None else
                self.deployment.provider.price(content_id),
            )

    def _setup_p2drm_users(self) -> None:
        self._users: dict[int, object] = {}
        for index in range(self.config.n_users):
            user = self.deployment.add_user(f"user-{index:03d}", balance=10_000)
            self._users[index] = user

    def _setup_baseline_users(self) -> None:
        self._users = {}
        for index in range(self.config.n_users):
            user_id = f"user-{index:03d}"
            card = SmartCard(
                self.deployment.rng.fork(f"bl-card-{index}").random_bytes(16),
                self.deployment.group,
                rng=self.deployment.rng.fork(f"bl-card-rng-{index}"),
                authority_key=self.deployment.authority.public_key,
            )
            user = BaselineUser(user_id, card)
            self.provider.register_user(user)
            self.deployment.bank.open_account(user.bank_account, initial_balance=10_000)
            self._users[index] = user

    def _make_device(self):
        deployment = self.deployment
        now = deployment.clock.now()
        certificate = deployment.authority.certify_device(
            deployment.rng.random_bytes(8).hex(),
            model="sim-player",
            capabilities=("play", "display"),
            not_before=now,
            not_after=now + 10 * 365 * 24 * 3600,
        )
        from ..core.actors.device import CompliantDevice

        device = CompliantDevice(
            certificate,
            clock=deployment.clock,
            provider_license_key=self.provider.license_key,
        )
        device.sync_revocations(self.provider)
        return device

    # -- event execution -----------------------------------------------------

    def run(self) -> SimulationReport:
        """Execute the configured number of events; returns the report."""
        report = SimulationReport(mode=self.mode, config=self.config)
        report.backend = backend_name()
        start = self.deployment.clock.now()
        for _ in range(self.config.n_events):
            self.deployment.clock.advance(self.workload.next_gap())
            self._run_prefetches()
            action = self.workload.pick_action()
            user_index = self.workload.pick_user()
            try:
                if action == ACTION_BUY:
                    self._do_buy(user_index, report)
                elif action == ACTION_PLAY:
                    self._do_play(user_index, report)
                elif action == ACTION_REDEEM:
                    self._do_redeem(report)
                else:
                    self._do_transfer(user_index, report)
            except ReproError:
                report.denials += 1
        report.pending_redemptions = len(self._pending_redemptions)
        report.sim_seconds = self.deployment.clock.now() - start
        report.provider_revenue = self._provider_revenue()
        report.operator_knowledge = self._operator_knowledge()
        return report

    def _provider_revenue(self) -> int:
        """The provider's closing balance in whichever ledger the run
        actually credited (sharded service ledger or in-process bank)."""
        if self._gateway is not None:
            return self._gateway.balance(self._gateway.bank_account)
        return self.deployment.bank.balance(self.provider._bank_account)

    def _run_prefetches(self) -> None:
        """Certificate cover traffic: random users stock up credentials
        ahead of need.  Decoupling certification time from use time is
        the defence against the issuer–provider timing join — the
        ``prefetch_rate`` knob is what experiment E7 sweeps."""
        if self.mode != MODE_P2DRM:
            return
        for _ in range(self.workload.pick_prefetch_count()):
            user = self._users[self.workload.pick_user()]
            user.prepare_certificate(self.deployment.issuer)

    def _do_buy(self, user_index: int, report: SimulationReport) -> None:
        content_id = self._content_ids[self.workload.pick_content()]
        user = self._users[user_index]
        if self.mode == MODE_P2DRM:
            license_ = user.buy(
                content_id,
                provider=self.provider,
                issuer=self.deployment.issuer,
                bank=self.deployment.bank,
            )
            report.ground_truth[license_.holder_fingerprint] = user.card.card_id
            report.user_of_card[user.card.card_id] = user.user_id
        else:
            baseline_purchase(
                user, self.provider, content_id, clock=self.deployment.clock
            )
        report.purchases += 1

    def _do_play(self, user_index: int, report: SimulationReport) -> None:
        user = self._users[user_index]
        owned = list(user.licenses.values())
        if not owned:
            report.skipped += 1
            return
        license_ = owned[int(self.workload.pick_content()) % len(owned)]
        package = self.provider.download(license_.content_id)
        self.device.render(license_, package, user.card, action="play")
        report.plays += 1

    def _do_transfer(self, user_index: int, report: SimulationReport) -> None:
        sender = self._users[user_index]
        transferable = [
            lic for lic in sender.licenses.values() if lic.rights.transferable
        ]
        if not transferable or self.config.n_users < 2:
            report.skipped += 1
            return
        license_ = transferable[0]
        receiver_index = self.workload.pick_other_user(user_index)
        receiver = self._users[receiver_index]
        if self.mode == MODE_P2DRM:
            anonymous = sender.transfer_out(
                license_.license_id, provider=self.provider
            )
            if self._deferred_redemption:
                # The out-of-band handover happened; personalization
                # waits for a redeem event (possibly batched).
                self._pending_redemptions.append((receiver_index, anonymous))
            else:
                new_license = receiver.redeem(
                    anonymous, provider=self.provider, issuer=self.deployment.issuer
                )
                self._record_redemption(receiver, new_license, report)
        else:
            baseline_transfer(
                sender,
                receiver,
                self.provider,
                license_.license_id,
                clock=self.deployment.clock,
            )
        report.transfers += 1

    @property
    def _deferred_redemption(self) -> bool:
        """Whether transfers park their bearer licence for later
        redemption instead of personalizing inline."""
        return (
            self.mode == MODE_P2DRM
            and self.config.action_weights.get(ACTION_REDEEM, 0) > 0
        )

    def _record_redemption(self, receiver, new_license, report) -> None:
        report.ground_truth[new_license.holder_fingerprint] = receiver.card.card_id
        report.user_of_card[receiver.card.card_id] = receiver.user_id

    def _do_redeem(self, report: SimulationReport) -> None:
        """Drain up to ``redeem_batch_size`` parked bearer licences.

        A single waiting licence goes through the per-item protocol;
        more than one goes through the provider's batched redemption
        desk, with per-item failures counted as denials (one offender
        never poisons the queue).
        """
        if self.mode != MODE_P2DRM or not self._pending_redemptions:
            report.skipped += 1
            return
        from ..core.protocols.transfer import (
            accept_redeemed_license,
            build_redeem_request,
            redeem_anonymous,
        )

        take = min(self.config.redeem_batch_size, len(self._pending_redemptions))
        drained = self._pending_redemptions[:take]
        del self._pending_redemptions[:take]
        if take == 1:
            receiver_index, anonymous = drained[0]
            receiver = self._users[receiver_index]
            new_license = redeem_anonymous(
                receiver, self.provider, self.deployment.issuer, anonymous
            )
            self._record_redemption(receiver, new_license, report)
            report.redemptions += 1
            return
        receivers = [self._users[receiver_index] for receiver_index, _ in drained]
        requests = [
            build_redeem_request(
                receiver, self.provider, self.deployment.issuer, anonymous
            )
            for receiver, (_, anonymous) in zip(receivers, drained)
        ]
        results = self.provider.redeem_batch(requests)
        for receiver, request, result in zip(receivers, requests, results):
            if isinstance(result, Exception):
                report.denials += 1
                continue
            accept_redeemed_license(receiver, self.provider, request, result)
            self._record_redemption(receiver, result, report)
            report.redemptions += 1
            report.batched_redemptions += 1

    # -- what the operator knows at the end ---------------------------------------

    @property
    def _operator_view(self):
        """Where operator analytics read from: the gateway's shard
        stores when the service layer runs (the NetClient is a *user*
        of the operator, not the operator — profiling happens on the
        operator's side of the wire), else the in-process provider."""
        return self._gateway if self._gateway is not None else self.provider

    def _operator_knowledge(self) -> dict:
        from ..baseline.tracking import ProfileBuilder

        operator = self._operator_view
        tracking = ProfileBuilder(operator).build().summary()
        if self.mode == MODE_P2DRM:
            from ..analysis.linkability import build_transaction_graph

            tracking.update(
                {"graph_" + k: v for k, v in build_transaction_graph(operator).stats().items()}
            )
        return tracking
