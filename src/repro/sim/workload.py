"""Workload distributions: who does what, when, to which content.

Choices follow the standard content-market stylized facts:

- content popularity is **Zipf** (rank-``r`` item drawn with
  probability ∝ ``1/r^s``, default ``s = 1.2``) — a few hits, a long
  tail;
- event arrivals are **Poisson** (exponential inter-arrival times),
  so traffic density is a single tunable ``mean_interarrival`` — the
  knob experiments E7/E8 sweep, because anonymity under timing attack
  *is* traffic density;
- users are drawn uniformly; the action mix (buy/play/transfer) is a
  weighted choice.

All randomness comes from one numpy ``Generator`` seeded from the
config, independent of the crypto RNG — reshaping the workload never
perturbs key material and vice versa.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

ACTION_BUY = "buy"
ACTION_PLAY = "play"
ACTION_TRANSFER = "transfer"
#: Redeem received bearer licences.  Weighting this action switches the
#: simulator to *deferred* redemption: a transfer event only runs the
#: exchange half and parks the anonymous licence; redeem events drain
#: the pool (up to ``redeem_batch_size`` at a time, through
#: ``ContentProvider.redeem_batch`` when more than one is waiting).
ACTION_REDEEM = "redeem"


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs for one simulated marketplace run."""

    n_users: int = 20
    n_contents: int = 30
    n_events: int = 200
    zipf_s: float = 1.2
    mean_interarrival: float = 60.0      # seconds between events
    action_weights: dict = field(
        default_factory=lambda: {ACTION_BUY: 0.45, ACTION_PLAY: 0.40, ACTION_TRANSFER: 0.15}
    )
    min_price: int = 1
    max_price: int = 8
    #: Expected number of certificate pre-fetches per marketplace event
    #: (Poisson).  0 = every certificate is obtained at transaction
    #: time, the worst case for the timing attack of experiment E7;
    #: higher rates decouple certification time from use time and mix
    #: users' certifications together.
    prefetch_rate: float = 0.0
    #: How many parked bearer licences one redeem event personalizes at
    #: most.  1 keeps redemption per-item; larger values let the
    #: provider's batched redemption desk amortize its aggregate
    #: signature checks.  Only meaningful when :data:`ACTION_REDEEM`
    #: carries weight in ``action_weights``.
    redeem_batch_size: int = 1
    seed: int = 2004

    def __post_init__(self) -> None:
        if self.n_users < 1 or self.n_contents < 1 or self.n_events < 0:
            raise ValueError("population sizes must be positive")
        if self.mean_interarrival <= 0:
            raise ValueError("mean_interarrival must be positive")
        if not self.action_weights or min(self.action_weights.values()) < 0:
            raise ValueError("action weights must be non-negative")
        if self.min_price < 1 or self.max_price < self.min_price:
            raise ValueError("invalid price range")
        if self.redeem_batch_size < 1:
            raise ValueError("redeem_batch_size must be positive")


class WorkloadGenerator:
    """Samples users, contents, actions and inter-arrival gaps."""

    def __init__(self, config: WorkloadConfig):
        self.config = config
        self._rng = np.random.Generator(np.random.PCG64(config.seed))
        ranks = np.arange(1, config.n_contents + 1, dtype=float)
        weights = 1.0 / np.power(ranks, config.zipf_s)
        self._content_probs = weights / weights.sum()
        actions = sorted(config.action_weights)
        action_weights = np.array(
            [config.action_weights[a] for a in actions], dtype=float
        )
        self._actions = actions
        self._action_probs = action_weights / action_weights.sum()

    def next_gap(self) -> int:
        """Next exponential inter-arrival gap, at least 1 second."""
        return max(1, int(round(self._rng.exponential(self.config.mean_interarrival))))

    def pick_user(self) -> int:
        return int(self._rng.integers(0, self.config.n_users))

    def pick_other_user(self, not_this: int) -> int:
        """A counterparty for transfers (uniform among the rest)."""
        if self.config.n_users < 2:
            raise ValueError("need at least two users for a transfer")
        while True:
            other = self.pick_user()
            if other != not_this:
                return other

    def pick_content(self) -> int:
        """Zipf-popular content rank (0-based index)."""
        return int(self._rng.choice(self.config.n_contents, p=self._content_probs))

    def pick_action(self) -> str:
        return str(self._rng.choice(self._actions, p=self._action_probs))

    def pick_price(self) -> int:
        return int(
            self._rng.integers(self.config.min_price, self.config.max_price + 1)
        )

    def pick_prefetch_count(self) -> int:
        """How many users pre-fetch a certificate before this event."""
        if self.config.prefetch_rate <= 0:
            return 0
        return int(self._rng.poisson(self.config.prefetch_rate))

    def content_popularity(self) -> np.ndarray:
        """The Zipf pmf over content ranks (diagnostics/plots)."""
        return self._content_probs.copy()
