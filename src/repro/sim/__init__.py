"""Marketplace simulation: synthetic users for the privacy experiments.

The paper has no user study and we have no production traces (none
exist for a system nobody deployed); the simulator supplies the
missing workload per the substitution rule in DESIGN.md §2.  It
generates a content marketplace with Zipf-popular items, Poisson user
arrivals and a configurable buy/play/transfer mix, runs it against
either the P2DRM or the baseline deployment, and — crucially for the
attack experiments — records the **ground truth** (pseudonym → user)
that the adversary is later scored against.

- :mod:`repro.sim.workload` — distributions and action streams;
- :mod:`repro.sim.marketplace` — the simulation driver and report.
"""

from .workload import WorkloadConfig, WorkloadGenerator
from .marketplace import MarketplaceSimulator, SimulationReport

__all__ = [
    "WorkloadConfig",
    "WorkloadGenerator",
    "MarketplaceSimulator",
    "SimulationReport",
]
