"""Exception hierarchy for the P2DRM reproduction.

Every error raised by this package derives from :class:`ReproError`, so
applications can catch one base class at integration boundaries.  The
sub-hierarchies mirror the package layout: codec, crypto, rights
language, storage and protocol failures are distinguishable because
callers react to them differently (a :class:`DoubleRedemptionError` is
*evidence of misuse* that feeds the anonymity-revocation protocol,
whereas a :class:`CodecError` is a malformed message to be dropped).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


# ---------------------------------------------------------------------------
# Encoding / decoding
# ---------------------------------------------------------------------------


class CodecError(ReproError):
    """A value could not be canonically encoded or decoded."""


class NonCanonicalEncoding(CodecError):
    """Decoded input is valid data but not the canonical byte form.

    Signed structures must have exactly one byte representation;
    accepting alternates would allow signature-stripping games, so the
    decoder rejects them outright.
    """


# ---------------------------------------------------------------------------
# Cryptography
# ---------------------------------------------------------------------------


class CryptoError(ReproError):
    """Base class for failures in the cryptographic substrate."""


class InvalidSignature(CryptoError):
    """A signature did not verify under the claimed public key."""


class DecryptionError(CryptoError):
    """Ciphertext failed to decrypt (padding, tag, or key mismatch)."""


class InvalidProof(CryptoError):
    """A zero-knowledge proof failed verification."""


class KeyFormatError(CryptoError):
    """Serialized key material was malformed or of the wrong type."""


class ParameterError(ReproError):
    """Parameters are unusable (sizes, ranges, group membership).

    Raised across the package — crypto parameter checks, store sizing,
    workload configuration — wherever the *caller* supplied an
    impossible value.
    """


# ---------------------------------------------------------------------------
# Rights expression language
# ---------------------------------------------------------------------------


class RelError(ReproError):
    """Base class for rights-expression failures."""


class RightsParseError(RelError):
    """A rights expression string or document could not be parsed."""


class RightsDenied(RelError):
    """An action was requested that the rights expression does not grant.

    Carries the machine-readable reason so devices can show users *why*
    playback was refused (FIP "openness").
    """

    def __init__(self, action: str, reason: str):
        super().__init__(f"action {action!r} denied: {reason}")
        self.action = action
        self.reason = reason


# ---------------------------------------------------------------------------
# Storage
# ---------------------------------------------------------------------------


class StorageError(ReproError):
    """Base class for store failures."""


class StoreIntegrityError(StorageError):
    """A store's integrity invariant was violated (audit chain, Merkle)."""


class MigrationError(StorageError):
    """Schema migration could not be applied."""


# ---------------------------------------------------------------------------
# Protocols
# ---------------------------------------------------------------------------


class ProtocolError(ReproError):
    """Base class for protocol-level failures."""


class AuthenticationError(ProtocolError):
    """A party failed to prove what the protocol step requires."""


class ComplianceError(ProtocolError):
    """A device or card failed the compliance-certificate check."""


class PaymentError(ProtocolError):
    """Payment was missing, malformed, or insufficient."""


class DoubleSpendError(PaymentError):
    """An e-cash coin was presented more than once.

    Instances carry the coin identifier so the bank can produce
    evidence for the revocation protocol.
    """

    def __init__(self, coin_id: bytes):
        super().__init__(f"coin {coin_id.hex()} already spent")
        self.coin_id = coin_id


class DoubleRedemptionError(ProtocolError):
    """An anonymous licence identifier was redeemed more than once.

    This is the misuse event the paper's revocable-anonymity mechanism
    exists for: the provider keeps both redemption transcripts as
    evidence and hands them to the TTP.
    """

    def __init__(self, token_id: bytes):
        super().__init__(f"anonymous licence {token_id.hex()} already redeemed")
        self.token_id = token_id


class RevokedLicenseError(ProtocolError):
    """A licence on the revocation list was presented for use."""


class UnknownContentError(ProtocolError):
    """The requested content identifier is not in the catalog."""


class EscrowError(ProtocolError):
    """Identity escrow could not be opened or evidence did not verify."""


# ---------------------------------------------------------------------------
# Service layer
# ---------------------------------------------------------------------------


class ServiceError(ReproError):
    """The multi-process service layer failed operationally.

    Distinct from protocol rejections: a :class:`ServiceError` means a
    worker died, a response timed out, or the gateway was misused —
    infrastructure trouble, not a verdict about the request.
    """


class OverloadedError(ServiceError):
    """The service shed this request instead of queuing it unbounded.

    Raised at admission — by the pool when an inflight ceiling or a
    worker queue bound is full, or by the socket server at its own
    ceiling — *before* any desk touches the request, so a shed request
    has no side effects and is always safe to retry.  Carries a
    ``retry_after_ms`` hint (integer milliseconds; the wire codec has
    no float type) and crosses every transport as a typed error
    envelope like any other :class:`ServiceError`: a flooded server
    answers fast and honest instead of slow and eventually.
    """

    def __init__(self, message: str, *, retry_after_ms: int = 100):
        super().__init__(message)
        self.retry_after_ms = int(retry_after_ms)


class WireError(ServiceError):
    """Bytes on a service transport violated the framing protocol.

    Raised by the frame codec on untrusted network input — bad magic,
    unknown version or frame type, or a declared length the peer is
    not allowed to send.  Always a reason to drop the connection; never
    a verdict about any request that may have been inside the bytes.
    """


class FrameTooLargeError(WireError):
    """A frame header declared a payload above the configured maximum.

    Raised *from the header alone*, before any payload is buffered:
    an attacker-controlled length field must cost the receiver a
    16-byte read, not a multi-gigabyte allocation (``MemoryError``).
    """


class TruncatedFrameError(WireError):
    """The byte stream ended in the middle of a frame.

    A connection closing between frames is a normal goodbye; closing
    *inside* one means the peer (or the network) lost data and whatever
    request was in flight has no answer — callers see this error
    instead of a silent hang.
    """
