"""Privacy analysis: quantifying what the adversary actually gets.

The paper *claims* unlinkability; this package measures it.  The
adversary is the honest-but-curious provider, optionally colluding
with the card issuer (the strongest realistic coalition short of
breaking crypto), armed with every timestamped record both keep:

- :mod:`repro.analysis.linkability` — transaction graphs over the
  providers' records (networkx) and anonymity-set extraction;
- :mod:`repro.analysis.metrics` — anonymity measures: set sizes,
  Serjantov–Danezis effective entropy, linkage success rates;
- :mod:`repro.analysis.attacker` — the timing-correlation attacker
  that joins issuer certification times against provider transaction
  times (experiments E7/E8).
"""

from .linkability import TransactionGraph, build_transaction_graph
from .metrics import (
    anonymity_set_entropy,
    effective_anonymity_size,
    linkage_success_rate,
)
from .attacker import TimingAttacker, AttackOutcome

__all__ = [
    "TransactionGraph",
    "build_transaction_graph",
    "anonymity_set_entropy",
    "effective_anonymity_size",
    "linkage_success_rate",
    "TimingAttacker",
    "AttackOutcome",
]
