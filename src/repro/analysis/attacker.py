"""The timing-correlation attacker (issuer–provider collusion).

Blind signatures make pseudonym certificates *cryptographically*
unlinkable to enrolments — but the issuer still logs **when** each
card obtained a certificate, and the provider logs **when** each
pseudonym first transacted.  With the fresh-pseudonym-per-transaction
policy those two instants are seconds apart, so a colluding pair can
join on time:

    candidates(tx at t) = { cards certified in [t - window, t) }

This is exactly the traffic-analysis caveat the paper concedes, and
the measurable story of experiments E7/E8: anonymity is the *number of
users active in your window* — dense traffic or batched certification
buys privacy, sparse traffic destroys it, and no cryptography in this
layer changes that.

Inputs are the actual audit logs both parties keep; ground truth for
scoring comes from the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CertificationEvent:
    card_id: bytes
    at: int


@dataclass(frozen=True)
class TransactionEvent:
    pseudonym: bytes
    at: int
    kind: str      # "purchase" | "redemption"


@dataclass
class AttackOutcome:
    """Per-transaction candidate sets plus aggregate scores."""

    candidate_sets: list[list[bytes]] = field(default_factory=list)
    guesses: list[bytes | None] = field(default_factory=list)
    truths: list[bytes] = field(default_factory=list)

    @property
    def mean_anonymity_set(self) -> float:
        from .metrics import mean_anonymity_set_size

        return mean_anonymity_set_size(self.candidate_sets)

    @property
    def success_rate(self) -> float:
        from .metrics import linkage_success_rate

        return linkage_success_rate(self.guesses, self.truths)

    @property
    def uniqueness_rate(self) -> float:
        from .metrics import uniqueness_rate

        return uniqueness_rate(self.candidate_sets)

    def summary(self) -> dict:
        return {
            "transactions": len(self.truths),
            "mean_anonymity_set": round(self.mean_anonymity_set, 3),
            "uniqueness_rate": round(self.uniqueness_rate, 4),
            "success_rate": round(self.success_rate, 4),
        }


class TimingAttacker:
    """Join issuer certification times against provider transaction times."""

    def __init__(self, window_seconds: int):
        if window_seconds <= 0:
            raise ValueError("window must be positive")
        self.window_seconds = window_seconds

    @staticmethod
    def certification_events(issuer) -> list[CertificationEvent]:
        """Extract the issuer's view (what it logs at blind signing)."""
        return [
            CertificationEvent(card_id=bytes(e.payload["card"]), at=e.at)
            for e in issuer.audit_log.entries(event="pseudonym_certified")
        ]

    @staticmethod
    def transaction_events(provider) -> list[TransactionEvent]:
        """Extract the provider's view (first sighting of each pseudonym)."""
        events: list[TransactionEvent] = []
        seen: set[bytes] = set()
        for entry in provider.audit_log.entries():
            if entry.event == "license_issued" and "pseudonym" in entry.payload:
                kind = "purchase"
            elif entry.event == "license_redeemed":
                kind = "redemption"
            else:
                continue
            pseudonym = bytes(entry.payload["pseudonym"])
            if pseudonym in seen:
                continue
            seen.add(pseudonym)
            events.append(
                TransactionEvent(pseudonym=pseudonym, at=entry.at, kind=kind)
            )
        return events

    def attack(
        self,
        certifications: list[CertificationEvent],
        transactions: list[TransactionEvent],
        ground_truth: dict[bytes, bytes],
    ) -> AttackOutcome:
        """Run the join; score against ``ground_truth``
        (pseudonym fingerprint → true card id, from the simulator).

        Guess rule: the **most recently** certified candidate card —
        with fresh-per-transaction certification the true card is
        usually the latest one, so this is the strongest simple rule.
        """
        certs = sorted(certifications, key=lambda e: e.at)
        outcome = AttackOutcome()
        for tx in transactions:
            truth = ground_truth.get(tx.pseudonym)
            if truth is None:
                continue
            window_start = tx.at - self.window_seconds
            candidates = [
                c for c in certs if window_start <= c.at <= tx.at
            ]
            candidate_cards = list({c.card_id for c in candidates})
            guess = candidates[-1].card_id if candidates else None
            outcome.candidate_sets.append(candidate_cards)
            outcome.guesses.append(guess)
            outcome.truths.append(truth)
        return outcome

    def attack_deployment(self, issuer, provider, ground_truth) -> AttackOutcome:
        """Convenience: pull both logs and attack."""
        return self.attack(
            self.certification_events(issuer),
            self.transaction_events(provider),
            ground_truth,
        )
