"""Anonymity metrics.

Standard measures from the anonymity literature, applied to attacker
candidate sets:

- **anonymity set size** — how many subjects could have performed the
  action, given everything the adversary saw;
- **effective anonymity** (Serjantov–Danezis) — the entropy of the
  adversary's posterior over candidates, in bits; ``2**entropy`` is
  the "effective" set size when candidates are not equally likely;
- **linkage success rate** — fraction of actions where the adversary's
  best guess names the true subject (the operational bottom line).
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence


def anonymity_set_entropy(distribution: Mapping[object, float]) -> float:
    """Shannon entropy (bits) of a candidate distribution.

    The distribution need not be normalized; zero-mass entries are
    ignored.  An empty or single-candidate distribution has entropy 0.
    """
    total = float(sum(v for v in distribution.values() if v > 0))
    if total <= 0:
        return 0.0
    entropy = 0.0
    for weight in distribution.values():
        if weight <= 0:
            continue
        p = weight / total
        entropy -= p * math.log2(p)
    return entropy


def effective_anonymity_size(distribution: Mapping[object, float]) -> float:
    """``2**entropy`` — the equally-likely set size this posterior is
    worth (Serjantov–Danezis)."""
    return 2.0 ** anonymity_set_entropy(distribution)


def linkage_success_rate(
    guesses: Sequence[object], truths: Sequence[object]
) -> float:
    """Fraction of positions where guess equals truth.

    ``None`` guesses (attacker abstained) count as failures.
    """
    if len(guesses) != len(truths):
        raise ValueError("guesses and truths must align")
    if not truths:
        return 0.0
    hits = sum(
        1 for guess, truth in zip(guesses, truths) if guess is not None and guess == truth
    )
    return hits / len(truths)


def mean_anonymity_set_size(sets: Sequence[Sequence[object]]) -> float:
    """Average candidate-set cardinality across observations."""
    if not sets:
        return 0.0
    return sum(len(s) for s in sets) / len(sets)


def uniqueness_rate(sets: Sequence[Sequence[object]]) -> float:
    """Fraction of observations whose candidate set is a singleton —
    the cases where "anonymous" collapses to identified."""
    if not sets:
        return 0.0
    return sum(1 for s in sets if len(s) == 1) / len(sets)
