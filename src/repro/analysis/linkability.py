"""Transaction graphs over provider records.

The provider's audit log is a stream of pseudonymous events.  This
module assembles them into a graph (networkx) whose nodes are the
identifiers the provider actually sees — pseudonym fingerprints,
licence ids, anonymous-licence tokens, content ids — and whose edges
are the links its own protocol handlers established (issued, exchanged,
redeemed).  Connected components of the pseudonym projection are the
provider's best-possible *structural* linkage; everything beyond that
needs side channels (timing — :mod:`repro.analysis.attacker`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

NODE_PSEUDONYM = "pseudonym"
NODE_LICENSE = "license"
NODE_TOKEN = "token"
NODE_CONTENT = "content"
NODE_USER = "user"


@dataclass
class TransactionGraph:
    """A provider's knowledge as a typed graph."""

    graph: nx.Graph = field(default_factory=nx.Graph)

    def _add_node(self, kind: str, key) -> str:
        name = f"{kind}:{key.hex() if isinstance(key, bytes) else key}"
        if name not in self.graph:
            self.graph.add_node(name, kind=kind)
        return name

    def add_issue(self, license_id: bytes, content_id: str, holder, at: int) -> None:
        license_node = self._add_node(NODE_LICENSE, license_id)
        content_node = self._add_node(NODE_CONTENT, content_id)
        self.graph.add_edge(license_node, content_node, kind="covers", at=at)
        if holder is not None:
            kind = NODE_USER if isinstance(holder, str) else NODE_PSEUDONYM
            holder_node = self._add_node(kind, holder)
            self.graph.add_edge(holder_node, license_node, kind="holds", at=at)

    def add_exchange(self, old_license: bytes, token: bytes, at: int) -> None:
        old_node = self._add_node(NODE_LICENSE, old_license)
        token_node = self._add_node(NODE_TOKEN, token)
        self.graph.add_edge(old_node, token_node, kind="exchanged", at=at)

    def add_redemption(self, token: bytes, new_license: bytes, at: int) -> None:
        token_node = self._add_node(NODE_TOKEN, token)
        new_node = self._add_node(NODE_LICENSE, new_license)
        self.graph.add_edge(token_node, new_node, kind="redeemed", at=at)

    # -- what the operator can conclude -------------------------------------

    def pseudonym_nodes(self) -> list[str]:
        return [
            n for n, d in self.graph.nodes(data=True) if d["kind"] == NODE_PSEUDONYM
        ]

    def user_nodes(self) -> list[str]:
        return [n for n, d in self.graph.nodes(data=True) if d["kind"] == NODE_USER]

    def linked_pseudonym_clusters(self) -> list[set[str]]:
        """Groups of pseudonyms the graph structurally connects.

        In plain P2DRM a transfer connects the giver's and receiver's
        pseudonyms through licence→token→licence; the cluster sizes
        measure how much pseudonym-level linkage the provider gets for
        free — and (with fresh pseudonyms) how little that says about
        *users*.
        """
        clusters: list[set[str]] = []
        content_nodes = {
            n for n, d in self.graph.nodes(data=True) if d["kind"] == NODE_CONTENT
        }
        # Content nodes join everyone who bought the same item; drop them
        # so components reflect transactional linkage, not taste overlap.
        view = self.graph.subgraph(set(self.graph.nodes) - content_nodes)
        for component in nx.connected_components(view):
            pseudonyms = {
                n for n in component if self.graph.nodes[n]["kind"] == NODE_PSEUDONYM
            }
            if pseudonyms:
                clusters.append(pseudonyms)
        return clusters

    def transfer_pairs(self) -> list[tuple[str, str]]:
        """(giver pseudonym, receiver pseudonym) pairs the provider can
        read directly off its own records via the token id."""
        pairs: list[tuple[str, str]] = []
        for token_node, data in self.graph.nodes(data=True):
            if data["kind"] != NODE_TOKEN:
                continue
            old_license = None
            new_license = None
            for neighbor in self.graph.neighbors(token_node):
                edge = self.graph.edges[token_node, neighbor]
                if edge["kind"] == "exchanged":
                    old_license = neighbor
                elif edge["kind"] == "redeemed":
                    new_license = neighbor
            if old_license is None or new_license is None:
                continue
            giver = self._holder_of(old_license)
            receiver = self._holder_of(new_license)
            if giver and receiver:
                pairs.append((giver, receiver))
        return pairs

    def _holder_of(self, license_node: str) -> str | None:
        for neighbor in self.graph.neighbors(license_node):
            kind = self.graph.nodes[neighbor]["kind"]
            if kind in (NODE_PSEUDONYM, NODE_USER):
                return neighbor
        return None

    def stats(self) -> dict:
        clusters = self.linked_pseudonym_clusters()
        return {
            "nodes": self.graph.number_of_nodes(),
            "edges": self.graph.number_of_edges(),
            "pseudonyms": len(self.pseudonym_nodes()),
            "users": len(self.user_nodes()),
            "clusters": len(clusters),
            "largest_cluster": max((len(c) for c in clusters), default=0),
            "transfer_pairs": len(self.transfer_pairs()),
        }


def build_transaction_graph(provider) -> TransactionGraph:
    """Assemble the graph from a provider's audit log and register."""
    graph = TransactionGraph()
    register = provider.license_register
    for event in provider.audit_log.entries():
        payload = event.payload
        if event.event == "license_issued":
            license_id = bytes(payload["license"])
            record = register.get(license_id)
            holder: object = None
            if "user" in payload:
                holder = str(payload["user"])
            elif record is not None and record.holder is not None:
                holder = record.holder
            graph.add_issue(
                license_id, str(payload["content"]), holder, event.at
            )
        elif event.event == "license_exchanged":
            graph.add_exchange(
                bytes(payload["old_license"]), bytes(payload["token"]), event.at
            )
        elif event.event == "license_redeemed":
            new_license = bytes(payload["license"])
            graph.add_redemption(bytes(payload["token"]), new_license, event.at)
            # The redeemed licence is an issuance too: it has a holder
            # pseudonym the provider saw.
            record = register.get(new_license)
            holder = (
                bytes(payload["pseudonym"])
                if "pseudonym" in payload
                else (record.holder if record else None)
            )
            graph.add_issue(
                new_license, str(payload["content"]), holder, event.at
            )
        elif event.event == "license_transferred":
            # Baseline: a direct named edge — model it as issue linkage;
            # the profiles module already counts these explicitly.
            continue
    return graph
