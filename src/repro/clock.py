"""Clocks.  No module in this package reads wall time directly.

Licence validity windows, revocation timestamps and the traffic-
analysis experiments all consume a :class:`Clock`; tests and the
simulator drive a :class:`SimClock`, applications use
:class:`SystemClock`.  Injecting time is what makes the unlinkability
experiments (E7/E8) reproducible — the attacker's power there *is*
timing, so timing must be controlled.
"""

from __future__ import annotations

import time


class Clock:
    """Interface: seconds since the epoch, as an int."""

    def now(self) -> int:
        raise NotImplementedError


class SystemClock(Clock):
    """Wall-clock time."""

    def now(self) -> int:
        return int(time.time())


class SimClock(Clock):
    """Controllable time for tests and simulation."""

    def __init__(self, start: int = 1_086_300_000):  # 2004-06-04, paper era
        self._now = int(start)

    def now(self) -> int:
        return self._now

    def advance(self, seconds: int) -> int:
        """Move time forward; returns the new time."""
        if seconds < 0:
            raise ValueError("time does not run backwards")
        self._now += seconds
        return self._now

    def set(self, moment: int) -> None:
        if moment < self._now:
            raise ValueError("time does not run backwards")
        self._now = int(moment)
