"""Idempotent-replay response cache: retry-safety for committed money.

A client that loses its connection after submitting a deposit cannot
know whether the 2PC commit point was crossed.  Retrying blind risks a
false :class:`~repro.errors.DoubleSpendError` — the coins *are* spent,
by the client's own first attempt.  This module closes that window: a
bounded cache maps each request's idempotency nonce (see
``wire.encode_request(..., nonce=...)``) to the completed response
bytes, so a retry whose original landed is answered with the original
receipt instead of being re-executed.

The cache rides the same exactly-once machinery as the bearer tokens:
records live in a :class:`ShardedSpentTokenStore` under the
``replay-cache`` kind, with the nonce as the token id and the durable
truth — which intent the receipt describes — in the transcript.

Correctness does **not** rest on the cache row alone.  A record is
written *before* the intent commits (via the sequencer's ``pre_commit``
seam), so a crash between the two leaves a record pointing at an intent
that startup recovery aborts.  Every lookup therefore re-validates
against the ledger:

- intent **committed** → the receipt is real, serve the cached bytes;
- intent **pending**   → the original attempt is mid-commit on another
  worker; wait briefly, then refuse retryably rather than guess;
- intent **aborted** or unknown → the record is stale; release it with
  a compare-and-delete and report a miss so the retry re-executes.

Eviction is honest about its one limitation: a retry arriving after its
record was pruned re-executes and earns a *truthful*
``DoubleSpendError`` — the standard failure mode of any bounded
idempotency window, and strictly no worse than having no cache.
"""

from __future__ import annotations

import time

from .. import codec
from ..errors import ServiceError
from .sharding import ShardedSpentTokenStore, ShardSet

#: Per-shard cap on cached responses.  Nonces hash uniformly, so the
#: effective window is ~``shards * this`` most-recent completed
#: requests — sized to dwarf any plausible retry horizon (a client
#: retries within its deadline, seconds, not thousands of requests).
DEFAULT_MAX_RECORDS_PER_SHARD = 4096

#: How long a lookup waits for a pending twin's commit point before
#: refusing retryably.  Mirrors the sequencer's pending-owner wait.
DEFAULT_WAIT_BUDGET = 2.0

_POLL_INTERVAL = 0.01

#: The spent-token ``kind`` namespacing replay records.  Audit tools
#: key off this to apply cache semantics (pruning allowed, staleness
#: possible) instead of bearer-token semantics.
REPLAY_KIND = "replay-cache"


def encode_replay_record(
    *, response: bytes, intent_id: bytes, account: str, amount: int
) -> bytes:
    """Canonical transcript for one cached response."""
    return codec.encode(
        {
            "response": bytes(response),
            "intent": bytes(intent_id),
            "account": account,
            "amount": amount,
        }
    )


def decode_replay_record(transcript: bytes) -> dict | None:
    """The fields of a replay transcript, or ``None`` if malformed.

    Offline audit uses the ``None`` path to flag corrupt rows; the
    runtime never writes one.
    """
    try:
        fields = codec.decode(transcript)
    except Exception:
        return None
    if not isinstance(fields, dict):
        return None
    if not (
        isinstance(fields.get("response"), bytes)
        and isinstance(fields.get("intent"), bytes)
        and isinstance(fields.get("account"), str)
        and isinstance(fields.get("amount"), int)
    ):
        return None
    return fields


class ReplayConflictError(ServiceError):
    """Two *live* requests presented the same nonce.

    Either a duplicate delivery raced its twin (the twin's record wins
    and the retry will be served from it), or a buggy client reused a
    nonce for a distinct request.  Both resolve the same way: this
    attempt backs out before its commit point and the caller re-checks
    the cache.  Retryable by construction — no state changed.
    """


class ReplayCache:
    """Bounded nonce → completed-response cache over the shard set."""

    def __init__(
        self,
        shards: ShardSet,
        ledger,
        *,
        max_records_per_shard: int = DEFAULT_MAX_RECORDS_PER_SHARD,
        wait_budget: float = DEFAULT_WAIT_BUDGET,
    ):
        self._store = ShardedSpentTokenStore(shards, REPLAY_KIND)
        self._ledger = ledger
        self._max_records_per_shard = max_records_per_shard
        self._wait_budget = wait_budget

    @property
    def store(self) -> ShardedSpentTokenStore:
        return self._store

    def record(
        self,
        nonce: bytes,
        *,
        response: bytes,
        intent_id: bytes,
        account: str,
        amount: int,
        at: int,
    ) -> None:
        """Durably bind ``nonce`` to the completed response.

        For deposits this is called from the sequencer's ``pre_commit``
        hook, so the record exists strictly before the credit it
        describes.  Non-2PC operations record *bare* (``intent_id=b""``,
        empty account, zero amount) after completion — weaker (a crash
        between completion and record loses the receipt) but strictly
        better than no cache, and with no false-success window: a bare
        record is only ever written after the operation finished.
        Raises :class:`ReplayConflictError` if the nonce is already
        bound — the caller backs out and the twin's record is
        authoritative.
        """
        transcript = encode_replay_record(
            response=response, intent_id=intent_id, account=account, amount=amount
        )
        existing = self._store.try_spend(nonce, at=at, transcript=transcript)
        if existing is not None:
            raise ReplayConflictError(
                "idempotency nonce already bound to another in-flight"
                " request; backing out — the first attempt's receipt"
                " is authoritative, retry to receive it"
            )
        # Keep the cache bounded as it grows: pruning the nonce's home
        # shard on every write amortises to O(1) deletes per insert.
        self._store.stores[self._store.shard_for(nonce)].prune_oldest(
            self._max_records_per_shard
        )

    def lookup(self, nonce: bytes) -> bytes | None:
        """The original response bytes for ``nonce``, or ``None``.

        ``None`` means "no valid completed original" — the request must
        be (re-)executed.  A record whose intent never left pending
        within the wait budget raises a retryable
        :class:`~repro.errors.ServiceError` instead of guessing.
        """
        record = self._store.record_for(nonce)
        if record is None:
            return None
        fields = decode_replay_record(record.transcript)
        if fields is None:
            # Corrupt row: never serve it, never trust it.  Release so
            # the slot heals; the request re-executes.
            self._store.unspend_if(nonce, record.transcript)
            return None
        if fields["intent"] == b"":
            # A *bare* record: a non-2PC operation (sell, redeem,
            # exchange, withdraw) recorded after completion.  There is
            # no commit point to gate on — the record's existence is
            # the completion evidence.
            return fields["response"]
        deadline = time.monotonic() + self._wait_budget
        while True:
            state = self._ledger.intent_state(fields["account"], fields["intent"])
            if state == "committed":
                return fields["response"]
            if state == "pending":
                if time.monotonic() >= deadline:
                    raise ServiceError(
                        "original request with this nonce is still"
                        " mid-commit; retry shortly"
                    )
                time.sleep(_POLL_INTERVAL)
                continue
            # Aborted or unknown: the original never credited (crash
            # before commit, then recovery).  Compare-and-delete so a
            # racing writer's fresh record survives, and re-execute.
            self._store.unspend_if(nonce, record.transcript)
            return None

    def prune(self) -> int:
        """Explicit full-sweep prune (tests and offline tools)."""
        return self._store.prune_oldest(self._max_records_per_shard)
