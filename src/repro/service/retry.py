"""Reconnecting client with exactly-once retry over flaky networks.

The base :class:`~repro.service.netserver.NetClient` is honest about
failure — every lost correlation resolves to a typed error — but it
does not *recover*: one reset and the connection is poisoned for good.
This module adds the recovery half:

- :class:`RetryPolicy` — deadline, attempt budget, capped exponential
  backoff with full jitter from an injected rng (deterministic under
  test), honoring :class:`~repro.errors.OverloadedError`'s
  ``retry_after_ms`` hint as a floor.
- :func:`retry_reason` — the one classification of every error the
  stack can produce into *retryable* (with a label) or *terminal*.
- :class:`ReconnectingNetClient` — a drop-in ``NetClient`` that
  re-dials on connection failure, replays unacknowledged requests
  **byte-identically** (same envelope, same idempotency nonce, same
  correlation ticket), and keeps retrying response-level retryable
  errors until the policy says stop.

Why byte-identical replay is safe: every request is stamped with an
idempotency nonce (:func:`repro.service.wire.encode_request`), and the
server's replay cache (:mod:`repro.service.replay`) answers a retry
whose original committed with the original receipt — so at-least-once
delivery at this layer composes into exactly-once *effect*.  The
client can therefore retry blindly on any ambiguous failure instead of
having to guess whether the first attempt landed.

What the client never does is *invent* an answer: an exhausted budget
or a terminal error surfaces as that typed error in the result slot —
wrong answers are the only forbidden outcome.
"""

from __future__ import annotations

import os
import random
import time

from ..errors import OverloadedError, ServiceError, TruncatedFrameError, WireError
from . import tracing, wire
from .metrics import MetricsRegistry, ensure_service_metrics
from .netserver import NetClient
from .transport import FRAME_RESPONSE, MAX_FRAME_PAYLOAD

__all__ = ["RetryPolicy", "ReconnectingNetClient", "retry_reason"]


def retry_reason(error: BaseException) -> str | None:
    """The retry label for ``error``, or ``None`` when it is terminal.

    The classification is subclass-ordered:

    - :class:`OverloadedError` — the server *asked* for a retry;
    - :class:`TruncatedFrameError` — the stream died mid-frame, the
      request's fate is unknown, and the nonce makes re-asking safe;
    - any other :class:`WireError` — the peer is speaking garbage;
      retrying into a protocol violation can only repeat it;
    - any other :class:`ServiceError` — operational trouble (worker
      death, timeouts, shed queues): retryable by that class's
      contract;
    - everything else (protocol verdicts like
      :class:`~repro.errors.DoubleSpendError`, payment refusals,
      parameter misuse) — a truthful answer, not a failure; retrying
      would just re-earn it.

    The label is the bare exception class name — safe for metric
    labels and span attributes (no free-form text, no identifiers).
    """
    if isinstance(error, OverloadedError):
        return "OverloadedError"
    if isinstance(error, TruncatedFrameError):
        return "TruncatedFrameError"
    if isinstance(error, WireError):
        return None
    if isinstance(error, ServiceError):
        return type(error).__name__
    return None


class RetryPolicy:
    """When to retry, how long to wait, and when to give up."""

    def __init__(
        self,
        *,
        deadline_s: float = 30.0,
        attempt_timeout_s: float = 1.0,
        base_delay_s: float = 0.01,
        max_delay_s: float = 0.5,
        max_attempts: int = 10,
        rng: random.Random | None = None,
    ):
        if deadline_s <= 0 or attempt_timeout_s <= 0:
            raise ServiceError("deadline_s and attempt_timeout_s must be > 0")
        if max_attempts < 1:
            raise ServiceError("need max_attempts >= 1")
        self.deadline_s = deadline_s
        #: How long one attempt waits for its response before treating
        #: it as lost (a blackholed reply must not eat the whole
        #: deadline in a single silent wait).
        self.attempt_timeout_s = attempt_timeout_s
        self.base_delay_s = base_delay_s
        self.max_delay_s = max_delay_s
        self.max_attempts = max_attempts
        #: Injected rng: deterministic jitter under test, and never
        #: the issuance rng (jitter must not perturb protocol bytes).
        self._rng = rng if rng is not None else random.Random()

    def backoff(self, attempt: int, error: BaseException | None = None) -> float:
        """Seconds to sleep before retry number ``attempt`` (1-based).

        Capped exponential with **full jitter** — ``uniform(0, cap)``
        — so a fleet of clients that failed together does not retry
        together.  An :class:`OverloadedError`'s ``retry_after_ms`` is
        honored as a floor: the server's hint beats our schedule.
        """
        cap = min(self.max_delay_s, self.base_delay_s * (2 ** max(0, attempt - 1)))
        delay = self._rng.uniform(0.0, cap)
        if isinstance(error, OverloadedError):
            delay = max(delay, error.retry_after_ms / 1000.0)
        return delay


class ReconnectingNetClient(NetClient):
    """A :class:`NetClient` that survives the network it runs on.

    Differences from the base client, all confined to failure paths:

    - a connection failure triggers a re-dial and a byte-identical
      replay of every unacknowledged outstanding request, on the same
      correlation tickets (a fresh connection has no memory of ids,
      and tickets stay unique client-side);
    - :meth:`gather` retries retryable outcomes under the
      :class:`RetryPolicy` and **returns** the typed error in the slot
      when the budget runs out — one doomed request cannot hang or
      kill a whole batch;
    - every request is stamped with an idempotency nonce, so a retry
      whose original landed is served the original receipt by the
      server's replay cache instead of a false refusal;
    - read-only control calls (catalog, balance, metrics…) retry the
      same way on fresh tickets — they are idempotent by nature.

    The client keeps its own metrics registry (``local_metrics``):
    ``p2drm_reconnects_total`` and ``p2drm_retries_total{op,reason}``
    count *this* client's view of the network, which no server-side
    registry can see.
    """

    def __init__(
        self,
        address: tuple[str, int],
        *,
        policy: RetryPolicy | None = None,
        timeout: float = 300.0,
        max_payload: int = MAX_FRAME_PAYLOAD,
        registry: MetricsRegistry | None = None,
        nonces=None,
    ):
        self._policy = policy if policy is not None else RetryPolicy()
        #: ticket -> (worker pin, envelope bytes, op kind) for every
        #: request not yet claimed by gather.  The envelope is the
        #: exact bytes to replay — never re-encoded.
        self._outstanding: dict[int, tuple[int | None, bytes, str]] = {}
        self._nonces = nonces if nonces is not None else (
            lambda: os.urandom(wire.NONCE_BYTES)
        )
        self._local = ensure_service_metrics(
            registry if registry is not None else MetricsRegistry()
        )
        self._m_reconnects = self._local.get("p2drm_reconnects_total")
        self._m_retries = self._local.get("p2drm_retries_total")
        super().__init__(address, timeout=timeout, max_payload=max_payload)

    @property
    def local_metrics(self) -> MetricsRegistry:
        """This client's own registry (reconnects and retries happen
        on the client's side of the wire)."""
        return self._local

    # -- reconnection ------------------------------------------------------

    def _redial_and_replay(self) -> None:
        """Fresh connection, then byte-identical replay of every
        outstanding request that has no parked response yet.

        Raises (typed) if the dial or a replay send fails — the caller
        owns the backoff-and-try-again loop.
        """
        try:
            self._socket.close()
        except OSError:
            pass
        try:
            self._connect()
        except OSError as exc:
            # Leave the client poisoned until a later attempt gets
            # through; every waiter sees the typed error meanwhile.
            self._broken = ServiceError(f"reconnect failed: {exc}")
            raise self._broken from exc
        self._m_reconnects.inc()
        for ticket, (worker, envelope, _kind) in sorted(self._outstanding.items()):
            if ticket not in self._received:
                self._send_request_frame(ticket, worker, envelope)

    def _send_request_frame(
        self, ticket: int, worker: int | None, envelope: bytes
    ) -> None:
        from .transport import FRAME_REQUEST, FRAME_REQUEST_PINNED, encode_pinned

        if worker is None:
            self._send(FRAME_REQUEST, ticket, envelope)
        else:
            self._send(FRAME_REQUEST_PINNED, ticket, encode_pinned(worker, envelope))

    # -- the transport -----------------------------------------------------

    def submit(self, request, *, worker: int | None = None) -> int:
        envelope = wire.encode_request(
            request,
            trace=tracing.current_context(),
            nonce=bytes(self._nonces()),
        )
        return self.submit_encoded(
            envelope, worker=worker, op=wire.request_kind(request)
        )

    def submit_encoded(
        self, envelope: bytes, *, worker: int | None = None, op: str = "unknown"
    ) -> int:
        """Register and send one envelope; tolerant of a down network.

        A send failure here does **not** raise: the request is parked
        as outstanding and the gather loop owns recovery — submit is
        called in bursts and must not make the burst's fate depend on
        which instant the network flapped.
        """
        with self._lock:
            ticket = next(self._next_id)
            self._outstanding[ticket] = (worker, envelope, op)
            try:
                self._send_request_frame(ticket, worker, envelope)
            except ServiceError:
                pass  # gather re-dials and replays
        return ticket

    def gather(self, tickets: list[int]) -> list:
        """Results for ``tickets``: decoded values, truthful protocol
        errors, or — new versus the base class — a typed retryable
        error *instance* when the retry budget ran out for that slot."""
        return [self._gather_one(ticket) for ticket in tickets]

    def _gather_one(self, ticket: int):
        with self._lock:
            if ticket not in self._outstanding and ticket not in self._received:
                raise ServiceError(f"unknown gather ticket {ticket}")
            worker, envelope, op = self._outstanding.get(
                ticket, (None, b"", "unknown")
            )
            deadline = time.monotonic() + self._policy.deadline_s
            attempt = 1
            last_error: BaseException = ServiceError("request never attempted")
            while True:
                outcome = self._await_response(ticket, deadline)
                if not isinstance(outcome, BaseException):
                    self._outstanding.pop(ticket, None)
                    return outcome
                reason = retry_reason(outcome)
                if reason is None:
                    # Terminal: a truthful verdict (or unrecoverable
                    # protocol trouble) — hand it back as the answer.
                    self._outstanding.pop(ticket, None)
                    return outcome
                last_error = outcome
                attempt += 1
                if attempt > self._policy.max_attempts or not envelope:
                    break
                delay = self._policy.backoff(attempt, outcome)
                if time.monotonic() + delay >= deadline:
                    break
                self._m_retries.inc(op=op, reason=reason)
                with tracing.span(
                    "client.retry", op=op, attempt=attempt, reason=reason
                ):
                    time.sleep(delay)
                    try:
                        if self._broken is not None:
                            self._redial_and_replay()
                        else:
                            # The connection is healthy; the failure
                            # was response-level.  Re-ask on the same
                            # ticket with the same bytes.
                            self._send_request_frame(ticket, worker, envelope)
                    except ServiceError:
                        continue  # next lap re-dials again
            self._outstanding.pop(ticket, None)
            if isinstance(last_error, ServiceError) and retry_reason(last_error):
                return ServiceError(
                    f"retry budget exhausted after {attempt - 1} attempts"
                    f" (last: {type(last_error).__name__}:"
                    f" {last_error})"
                )
            return last_error

    def _await_response(self, ticket: int, deadline: float):
        """One attempt's wait: a decoded result, or the error that
        ended the attempt (never raises for retryable trouble)."""
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return ServiceError("retry deadline exhausted")
        try:
            self._socket.settimeout(
                max(0.01, min(self._policy.attempt_timeout_s, remaining))
            )
        except OSError:
            pass
        try:
            payload = self._await_frame(ticket, FRAME_RESPONSE)
        except (ServiceError, OSError) as exc:
            return exc if isinstance(exc, ServiceError) else ServiceError(str(exc))
        finally:
            try:
                self._socket.settimeout(self._timeout)
            except OSError:
                pass
        decoded = wire.decode_response(payload)
        return decoded

    # -- the control channel -----------------------------------------------

    def _control(self, op: str, **args):
        """Control calls with the same recovery loop, on fresh tickets.

        Every control op is a read (catalog, price, balance, metrics,
        traces), so re-asking after an ambiguous failure cannot change
        state — no nonce needed.
        """
        deadline = time.monotonic() + self._policy.deadline_s
        attempt = 1
        while True:
            try:
                if self._broken is not None:
                    self._redial_and_replay()
                try:
                    # Bound the reply wait: a blackholed control reply
                    # must cost one attempt, not the whole deadline.
                    # (Socket timeouts are per-recv, so a large reply
                    # that keeps streaming chunks is unaffected.)
                    self._socket.settimeout(
                        max(
                            0.01,
                            min(
                                4 * self._policy.attempt_timeout_s,
                                deadline - time.monotonic(),
                            ),
                        )
                    )
                    return super()._control(op, **args)
                finally:
                    try:
                        self._socket.settimeout(self._timeout)
                    except OSError:
                        pass
            except ServiceError as exc:
                reason = retry_reason(exc)
                if reason is None:
                    raise
                attempt += 1
                if attempt > self._policy.max_attempts:
                    raise
                delay = self._policy.backoff(attempt, exc)
                if time.monotonic() + delay >= deadline:
                    raise
                self._m_retries.inc(op="control", reason=reason)
                time.sleep(delay)
