"""The transport-agnostic worker-pool core.

Everything the two front doors (the in-process
:class:`~repro.service.gateway.ServiceGateway` and the asyncio socket
server in :mod:`repro.service.netserver`) have in common lives here:
starting the worker processes, shard-affine routing, ticket
bookkeeping, response collection and dead-worker detection.  Neither
front door touches a queue or a process directly — they submit
requests and wait on tickets, which is exactly the discipline the
network path needs anyway.

One daemon **collector thread** owns the shared response queue.  It
parks every response under its ticket and notifies waiters, so any
number of threads — a blocking caller per ticket batch, or the socket
server's per-request executor waits — can gather concurrently without
stealing each other's responses off the queue.  The collector also
watches worker liveness: a ticket whose worker died (after a short
grace for responses the worker flushed before dying) fails fast with
:class:`~repro.errors.ServiceError` instead of waiting out the full
response timeout.

Correctness never depends on the routing: the per-shard stores
serialize racing writers at the SQLite lock, so even a token
deliberately submitted to two workers is spent exactly once.

The pool is also where the service stack *measures and bounds* itself
(see ``docs/metrics.md`` / ``docs/runbook.md``): every ticket feeds
per-op latency histograms and outcome counters in a
:class:`~repro.service.metrics.MetricsRegistry`, queue-depth and
inflight gauges track the books, and **admission control** sheds load
at submit time — a pool-wide ``max_inflight`` ceiling and a per-worker
``max_pending`` queue bound refuse further requests with a typed
:class:`~repro.errors.OverloadedError` (retry-later, no side effects)
instead of buffering without bound.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import threading
import time

from ..core.messages import (
    DepositRequest,
    ExchangeRequest,
    PurchaseRequest,
    RedeemRequest,
    WithdrawRequest,
)
from ..errors import OverloadedError, ServiceError
from . import tracing, wire
from .metrics import MetricsRegistry, ensure_service_metrics
from .sharding import shard_index
from .workers import ServiceConfig, require_start_method, worker_main

#: How long a gather waits for any worker response before declaring
#: the pool broken.  Generous: smoke-sized crypto on a loaded CI box.
RESPONSE_TIMEOUT = 300.0

#: Grace between noticing a worker died and failing its tickets —
#: responses the worker flushed just before dying drain out first.
_DEATH_GRACE = 2.0

#: Upper bound on the parked/abandoned ticket books (see ``WorkerPool``).
_BOOKKEEPING_CAP = 4096


class WorkerPool:
    """Worker processes plus the ticket discipline over them."""

    def __init__(
        self,
        config: ServiceConfig,
        *,
        workers: int = 2,
        start_method: str | None = None,
        clock=None,
        max_inflight: int | None = None,
        max_pending: int | None = None,
        registry: MetricsRegistry | None = None,
    ):
        if workers < 1:
            raise ServiceError("need at least one worker")
        if max_inflight is not None and max_inflight < 1:
            raise ServiceError("need max_inflight >= 1 (or None for unbounded)")
        if max_pending is not None and max_pending < 1:
            raise ServiceError("need max_pending >= 1 (or None for unbounded)")
        if workers > len(config.shard_paths):
            # Affinity maps shard -> worker, so surplus workers would
            # never see a request; refuse rather than silently idle.
            raise ServiceError(
                f"{workers} workers but only {len(config.shard_paths)} shards;"
                " use shards >= workers"
            )
        self._config = config
        self._workers = workers
        self._shard_count = len(config.shard_paths)
        # The operator's clock.  Every queue item is stamped with it at
        # submit time and workers follow *only* these stamps — time is
        # distributed from the trusted side of the wire, never taken
        # from client-controlled request fields (a signed-but-bogus
        # timestamp must not be able to drag a worker's clock).
        from ..clock import SimClock

        self._clock = clock if clock is not None else SimClock(config.clock_start)
        self._next_request_id = 0
        #: One condition guards every book below.  Ticket-id allocation
        #: additionally never leaves this lock, so concurrent
        #: submitting threads can never mint duplicate ids.
        self._cond = threading.Condition()
        #: Admission ceilings (``None`` = unbounded, the pre-overload
        #: behaviour): total outstanding tickets, and outstanding per
        #: worker queue.  Checked in ``_enqueue`` under ``_cond``.
        self._max_inflight = max_inflight
        self._max_pending = max_pending
        self._pending_per_worker = [0] * workers
        #: Which worker each outstanding ticket went to — lets the
        #: collector fail exactly the tickets a dead worker owed.
        self._ticket_worker: dict[int, int] = {}
        #: Per-ticket metrics/trace context:
        #: ``(op kind, submit monotonic, trace context or None)``.
        self._ticket_meta: dict[int, tuple[str, float, tracing.TraceContext | None]] = {}
        #: The stack's metrics registry (shared with the socket
        #: front-end; rendered by the Prometheus endpoint and the
        #: ``metrics`` control frame).
        self._registry = ensure_service_metrics(
            registry if registry is not None else MetricsRegistry()
        )
        self._m_requests = self._registry.get("p2drm_requests_total")
        self._m_errors = self._registry.get("p2drm_errors_total")
        self._m_shed = self._registry.get("p2drm_shed_total")
        self._m_latency = self._registry.get("p2drm_request_latency_seconds")
        self._m_queue_depth = self._registry.get("p2drm_queue_depth")
        self._m_inflight = self._registry.get("p2drm_inflight_requests")
        self._m_workers_alive = self._registry.get("p2drm_workers_alive")
        self._m_workers_alive.set(workers)
        self._m_warmup = self._registry.get("p2drm_worker_warmup_seconds")
        #: Worker warmup reports (worker index -> (mode, seconds)),
        #: filled by the collector as each worker finishes
        #: ``warm_fastexp`` and announces how it got its tables
        #: ("build" / "attach" / "cow").  Read via ``warmup_reports``.
        self._warmup: dict[int, tuple[str, float]] = {}
        # Tail-based capture: when a trace is kept, stamp its pool
        # latency as an exemplar on the request-latency histogram so a
        # slow bucket links to an inspectable trace.
        trace_recorder = tracing.recorder()
        if trace_recorder is not None:
            trace_recorder.on_keep(self._annotate_exemplars)
        #: Responses parked by the collector until their gather claims
        #: them (ticket -> raw payload bytes).
        self._parked: dict[int, bytes] = {}
        #: Tickets the collector failed (their worker died): gathers
        #: raise the recorded error instead of timing out.
        self._failed: dict[int, ServiceError] = {}
        #: Tickets whose gather gave up (timeout / dead worker): their
        #: late responses are dropped on arrival instead of parking in
        #: ``_parked`` forever.  Both books are bounded (oldest entries
        #: evicted past ``_BOOKKEEPING_CAP``) so a long-lived pool
        #: surviving repeated failures cannot leak memory — an evicted
        #: abandoned id at worst re-parks one late response in the
        #: (equally bounded) parked book.
        self._abandoned: set[int] = set()
        #: When the collector first saw each worker dead (grace timer),
        #: and when it last scanned at all (``is_alive`` is a syscall
        #: per worker — at high throughput the scan is rate-limited
        #: instead of running once per response).
        self._dead_since: dict[int, float] = {}
        self._last_liveness_scan = 0.0
        self._closed = False

        context = multiprocessing.get_context(start_method or require_start_method())
        self._request_queues = [context.Queue() for _ in range(workers)]
        self._response_queue = context.Queue()
        self._processes = []
        for index in range(workers):
            process = context.Process(
                target=worker_main,
                args=(index, config, self._request_queues[index], self._response_queue),
                daemon=True,
                name=f"p2drm-worker-{index}",
            )
            process.start()
            self._processes.append(process)
        # Started only after every fork: the collector must exist in
        # the parent alone (a forked child cloning a running thread's
        # lock state is exactly the kind of inheritance workers avoid).
        self._collector = threading.Thread(
            target=self._collect_forever, name="p2drm-pool-collector", daemon=True
        )
        self._collector.start()

    # -- lifecycle ---------------------------------------------------------

    @property
    def config(self) -> ServiceConfig:
        return self._config

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def shards(self) -> int:
        return self._shard_count

    @property
    def clock(self):
        return self._clock

    @property
    def processes(self) -> list:
        """The live worker process handles (tests kill these)."""
        return self._processes

    @property
    def metrics(self) -> MetricsRegistry:
        """The stack's metrics registry (shared with the socket
        front-end; see ``docs/metrics.md`` for every exported name)."""
        return self._registry

    @property
    def warmup_reports(self) -> dict[int, tuple[str, float]]:
        """Worker index -> ``(mode, seconds)`` warmup announcements
        collected so far ("build" / "attach" / "cow")."""
        with self._cond:
            return dict(self._warmup)

    def wait_warmup(self, timeout: float = 60.0) -> dict[int, tuple[str, float]]:
        """Block until every worker announced its warmup (or timeout);
        returns the reports.  Benches use this to separate warmup cost
        from steady-state throughput."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while len(self._warmup) < self._workers and not self._closed:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(timeout=min(remaining, 0.25))
            return dict(self._warmup)

    def close(self) -> None:
        """Stop the workers and the collector; idempotent."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        for request_queue in self._request_queues:
            try:
                request_queue.put(None)
            except (OSError, ValueError):
                pass
        for process in self._processes:
            process.join(timeout=30)
        for process in self._processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)
        self._collector.join(timeout=5)

    # -- routing -----------------------------------------------------------

    def _affinity_token(self, request) -> bytes:
        if isinstance(request, RedeemRequest):
            return request.anonymous_license.license_id
        if isinstance(request, ExchangeRequest):
            return request.license_id
        if isinstance(request, PurchaseRequest):
            return request.certificate.fingerprint
        if isinstance(request, DepositRequest):
            # The actual spend key (value||serial), so the deposit
            # lands on the worker whose slot owns the coin's shard.
            return request.coins[0].spent_token() if request.coins else b"deposit"
        if isinstance(request, WithdrawRequest):
            # Account-affine: the debit lands on the account's home
            # shard, so route to the worker whose slot owns it.
            return request.account.encode("utf-8")
        raise ServiceError(f"unroutable request {type(request).__name__}")

    def worker_for(self, request) -> int:
        """The shard-affine worker index for a request (exposed so
        tests can *defeat* affinity and race two workers)."""
        return self._worker_for_token(self._affinity_token(request))

    def _worker_for_token(self, token: bytes) -> int:
        return shard_index(token, self._shard_count) % self._workers

    # -- submission --------------------------------------------------------

    def submit(
        self, request, *, worker: int | None = None, nonce: bytes | None = None
    ) -> int:
        """Encode and enqueue one request; returns a gather ticket.

        Raises :class:`~repro.errors.OverloadedError` when an
        admission ceiling is full — before the request touches any
        queue or store, so a shed submit is always safe to retry.

        ``nonce`` stamps the envelope with an idempotency key (see
        :mod:`repro.service.replay`) so queue-path retries — chaos
        transports, the sim — get the same exactly-once replay the
        socket clients do.
        """
        ctx = tracing.current_context()
        return self._enqueue(
            wire.encode_request(request, trace=ctx, nonce=nonce),
            self.worker_for(request) if worker is None else worker % self._workers,
            wire.request_kind(request),
            ctx,
        )

    def submit_encoded(
        self,
        payload: bytes | memoryview,
        *,
        worker: int | None = None,
        trace: tracing.TraceContext | None = None,
    ) -> int:
        """Enqueue an already-encoded request envelope, verbatim.

        The network path lands here: the client's bytes go onto the
        worker queue untouched — routing reads only the affinity field
        (:func:`~repro.service.wire.peek_routing_token`, byte-equal to
        the typed request's token) instead of constructing the full
        request the worker will decode anyway — so the socket
        transport is byte-transparent end to end without paying the
        deserialization twice.  ``payload`` may be a ``memoryview``
        straight out of :class:`~repro.service.transport.FrameDecoder`:
        the peek reads through the view and the bytes are materialized
        exactly once, at the process-queue boundary (``_enqueue``),
        which is the first place an owned copy is unavoidable (the
        queue pickles).  Unroutable payloads raise — the caller
        answers the peer directly instead of burning a worker round
        trip.

        ``trace`` attaches the caller's span context to the ticket
        (the payload bytes stay verbatim — the socket path's trace
        context rides the envelope's own ``meta`` field, written by
        the *client*, not rewritten here).
        """
        kind, token = wire.peek_routing(payload)
        return self._enqueue(
            payload,
            self._worker_for_token(token)
            if worker is None
            else worker % self._workers,
            kind,
            trace,
        )

    def _enqueue(
        self,
        payload: bytes | memoryview,
        target: int,
        kind: str,
        ctx: tracing.TraceContext | None = None,
    ) -> int:
        if not isinstance(payload, bytes):
            # The one deliberate copy on the zero-copy path: the mp
            # queue pickles its items, so the view must become owned
            # bytes here — and nowhere earlier.
            payload = bytes(payload)
        with self._cond:
            if self._closed:
                raise ServiceError("worker pool is closed")
            # Admission control: shed *here*, before the ticket exists,
            # so an over-ceiling request has no side effects anywhere —
            # the typed refusal is the whole transaction.
            if (
                self._max_inflight is not None
                and len(self._ticket_worker) >= self._max_inflight
            ):
                self._shed_locked(kind, "pool", f"{self._max_inflight} in flight")
            if (
                self._max_pending is not None
                and self._pending_per_worker[target] >= self._max_pending
            ):
                self._shed_locked(
                    kind, "worker",
                    f"worker {target} at {self._max_pending} pending",
                )
            ticket = self._next_request_id
            self._next_request_id += 1
            submitted_at = time.monotonic()
            self._ticket_worker[ticket] = target
            self._ticket_meta[ticket] = (kind, submitted_at, ctx)
            self._pending_per_worker[target] += 1
            self._m_queue_depth.set(self._pending_per_worker[target], worker=target)
            self._m_inflight.set(len(self._ticket_worker))
        # The fourth element is the submit monotonic: CLOCK_MONOTONIC is
        # system-wide on the platforms the pool supports, so the worker
        # can measure queue wait as (its drain time - this stamp).
        self._request_queues[target].put(
            (ticket, payload, self._clock.now(), submitted_at)
        )
        return ticket

    def _shed_locked(self, kind: str, reason: str, detail: str) -> None:
        """Refuse admission: count the shed and raise the typed error."""
        self._m_shed.inc(op=kind, reason=reason)
        self._m_requests.inc(op=kind, outcome="shed")
        raise OverloadedError(f"service overloaded ({detail}); retry later")

    def _resolve_ticket_locked(self, ticket: int):
        """Retire one outstanding ticket from every book and gauge;
        returns ``(kind, submitted_at, trace ctx, worker)`` or ``None``
        (``_cond`` held)."""
        target = self._ticket_worker.pop(ticket, None)
        if target is not None:
            self._pending_per_worker[target] -= 1
            self._m_queue_depth.set(self._pending_per_worker[target], worker=target)
            self._m_inflight.set(len(self._ticket_worker))
        meta = self._ticket_meta.pop(ticket, None)
        if meta is None:
            return None
        return (*meta, target if target is not None else -1)

    # -- collection --------------------------------------------------------

    def gather_raw(self, tickets: list[int]) -> list[bytes]:
        """Raw response payloads aligned with ``tickets`` (blocking).

        Raises :class:`~repro.errors.ServiceError` when a ticket's
        worker died or nothing answered within ``RESPONSE_TIMEOUT``;
        responses already claimed are re-parked first (their side
        effects committed — a caller holding the tickets can still
        gather them) and the missing tickets are marked abandoned so a
        late response is dropped instead of parked forever.
        """
        with tracing.span("pool.collect", n=len(tickets)):
            return self._gather_raw(tickets)

    def _gather_raw(self, tickets: list[int]) -> list[bytes]:
        wanted = set(tickets)
        gathered: dict[int, bytes] = {}
        deadline = time.monotonic() + RESPONSE_TIMEOUT
        with self._cond:
            while wanted:
                for ticket in list(wanted):
                    payload = self._parked.pop(ticket, None)
                    if payload is not None:
                        gathered[ticket] = payload
                        wanted.discard(ticket)
                        continue
                    failure = self._failed.pop(ticket, None)
                    if failure is not None:
                        self._fail_locked(wanted, gathered)
                        raise failure
                if not wanted:
                    break
                if time.monotonic() > deadline:
                    self._fail_locked(wanted, gathered)
                    raise ServiceError(
                        f"no worker response within {RESPONSE_TIMEOUT}s"
                    )
                if self._closed:
                    self._fail_locked(wanted, gathered)
                    raise ServiceError("worker pool is closed")
                self._cond.wait(timeout=0.25)
        return [gathered[ticket] for ticket in tickets]

    def gather(self, tickets: list[int]) -> list:
        """Decoded results (or rejecting exceptions) for ``tickets``."""
        return [wire.decode_response(raw) for raw in self.gather_raw(tickets)]

    def _fail_locked(self, wanted: set, gathered: dict) -> None:
        """Bookkeeping for a gather about to raise (``_cond`` held)."""
        self._parked.update(gathered)
        self._abandoned.update(wanted)
        for ticket in wanted:
            meta = self._resolve_ticket_locked(ticket)
            if meta is not None:
                self._m_requests.inc(op=meta[0], outcome="abandoned")
        while len(self._parked) > _BOOKKEEPING_CAP:
            self._parked.pop(next(iter(self._parked)))
        while len(self._abandoned) > _BOOKKEEPING_CAP:
            self._abandoned.discard(min(self._abandoned))

    # -- the collector thread ---------------------------------------------

    def _collect_forever(self) -> None:
        """Drain the response queue and watch worker liveness."""
        while True:
            with self._cond:
                if self._closed:
                    return
            try:
                item = self._response_queue.get(timeout=0.25)
                ticket, payload = item[0], item[1]
                spans = item[2] if len(item) > 2 else ()
            except queue_module.Empty:
                ticket, payload, spans = None, None, ()
            except (EOFError, OSError, ValueError):
                # Queue torn down under us — close() is racing; loop
                # around and observe the flag.
                continue
            if ticket is None and payload is not None:
                # A worker's warmup announcement (no ticket): record
                # how it obtained its fastexp tables and at what cost.
                try:
                    tag, index, mode, seconds = payload
                except (TypeError, ValueError):
                    tag = None
                if tag == "warmup":
                    self._m_warmup.observe(seconds, mode=mode)
                    with self._cond:
                        self._warmup[index] = (mode, seconds)
                        self._cond.notify_all()
                continue
            if ticket is not None:
                # Classify before taking the lock: the outcome peek
                # decodes the envelope, and submitters must not wait on
                # that behind the condition variable.
                outcome, error_type = wire.peek_response_outcome(payload)
                if spans:
                    # Worker-side spans land in the recorder *before*
                    # the waiting gather is notified, so a boundary
                    # span ending right after sees the full trace.
                    trace_recorder = tracing.recorder()
                    if trace_recorder is not None:
                        trace_recorder.ingest(spans)
            with self._cond:
                if ticket is not None:
                    meta = self._resolve_ticket_locked(ticket)
                    if meta is not None:
                        kind, submitted_at, ctx, target = meta
                        self._m_latency.observe(
                            time.monotonic() - submitted_at, op=kind
                        )
                        self._m_requests.inc(op=kind, outcome=outcome)
                        if error_type is not None:
                            self._m_errors.inc(op=kind, type=error_type)
                        if ctx is not None:
                            tracing.record_span(
                                "pool.request",
                                trace_id=ctx.trace_id,
                                parent_id=ctx.span_id,
                                start=submitted_at,
                                duration=time.monotonic() - submitted_at,
                                status="error" if error_type is not None else "ok",
                                error=error_type or "",
                                attrs={"op": kind, "worker": target,
                                       "outcome": outcome},
                            )
                    if ticket in self._abandoned:
                        self._abandoned.discard(ticket)
                    else:
                        self._parked[ticket] = payload
                        while len(self._parked) > _BOOKKEEPING_CAP:
                            self._parked.pop(next(iter(self._parked)))
                        self._cond.notify_all()
                self._check_liveness_locked()

    def _check_liveness_locked(self) -> None:
        """Fail tickets owed by workers that stayed dead past grace."""
        now = time.monotonic()
        if now - self._last_liveness_scan < 0.2:
            return
        self._last_liveness_scan = now
        expired: list[int] = []
        alive = 0
        for index, process in enumerate(self._processes):
            if process.is_alive():
                alive += 1
                self._dead_since.pop(index, None)
                continue
            first_seen = self._dead_since.setdefault(index, now)
            if now - first_seen > _DEATH_GRACE:
                expired.append(index)
        self._m_workers_alive.set(alive)
        if not expired:
            return
        dead_names = [self._processes[index].name for index in expired]
        doomed = [
            ticket
            for ticket, owner in self._ticket_worker.items()
            if owner in expired
        ]
        for ticket in doomed:
            meta = self._resolve_ticket_locked(ticket)
            if meta is not None:
                kind, submitted_at, ctx, target = meta
                self._m_requests.inc(op=kind, outcome="error")
                self._m_errors.inc(op=kind, type="ServiceError")
                if ctx is not None:
                    # A SIGKILLed worker cannot ship its spans; this
                    # error span is what makes the trace a *kept* error
                    # trace, pointing at the worker that died.
                    tracing.record_span(
                        "pool.request",
                        trace_id=ctx.trace_id,
                        parent_id=ctx.span_id,
                        start=submitted_at,
                        duration=now - submitted_at,
                        status="error",
                        error="ServiceError",
                        attrs={"op": kind, "worker": target, "outcome": "dead"},
                    )
            self._failed[ticket] = ServiceError(
                f"worker(s) died with requests outstanding: {dead_names}"
            )
        while len(self._failed) > _BOOKKEEPING_CAP:
            self._failed.pop(next(iter(self._failed)))
        if doomed:
            self._cond.notify_all()

    def _annotate_exemplars(self, trace_id: bytes, entry: dict) -> None:
        """On-keep hook: link the latency histogram to the kept trace."""
        trace_hex = trace_id.hex()
        for rec in list(entry["spans"]):
            if rec["name"] == "pool.request":
                self._m_latency.annotate_exemplar(
                    rec["duration"], trace_hex, op=rec["attrs"].get("op", "unknown")
                )


__all__ = ["WorkerPool", "RESPONSE_TIMEOUT"]
