"""Per-shard stores behind the classic store APIs.

One provider database cannot absorb millions of users; this module
splits the provider's hot stores — spent tokens, request nonces, the
licence register, the revocation list, the audit log — across N SQLite
*files*, keyed by token-id hash.  Partitioning by hash means every
token has exactly one home shard, so the exactly-once invariants stay
local: a double redemption races two workers *on the same shard file*,
where SQLite's write lock (plus the stores' immediate transactions)
serializes them.

The cross-shard views here preserve the single-store method surfaces,
so :class:`~repro.core.actors.provider.ContentProvider` runs unchanged
against a :class:`ShardSet` — in a worker process (writing), or in the
gateway process (reading what the workers committed, via WAL).

Shard count is a *data* parameter, worker count an *execution* one:
``shards >= workers`` keeps every worker busy, and the hash keeps the
mapping stable when either changes.

Where this sits in the stack: ``docs/architecture.md`` (service
layer — the partitioning the pool's shard-affine routing targets).
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator, Sequence

from ..crypto.hashes import sha256
from ..crypto.rsa import RsaPrivateKey
from ..errors import ParameterError
from ..storage.audit import AuditEntry, AuditLog
from ..storage.engine import Database
from ..storage.licenses import LicenseRecord, LicenseStore
from ..storage.merkle import MerkleTree
from ..storage.revocation import (
    RevocationEntry,
    RevocationList,
    SignedSnapshot,
    _snapshot_payload,
)
from ..storage.spent_tokens import SpentRecord, SpentTokenStore


def shard_index(token: bytes, n_shards: int) -> int:
    """The home shard of ``token`` — stable across processes and runs.

    SHA-256 based, not ``hash()``: Python's string hashing is salted
    per process, and two processes disagreeing about a token's home
    shard would split the exactly-once gate.
    """
    if n_shards < 1:
        raise ParameterError("need at least one shard")
    return int.from_bytes(sha256(bytes(token))[:8], "big") % n_shards


class ShardSet:
    """N shard databases, opened once and closed together."""

    def __init__(self, paths: Sequence[str]):
        if not paths:
            raise ParameterError("need at least one shard path")
        self._paths = list(paths)
        # check_same_thread=False: each process serializes its own
        # access, but a gateway may touch its read views from whichever
        # thread collects worker responses.
        self._databases = [
            Database(path, check_same_thread=False) for path in self._paths
        ]

    @staticmethod
    def paths_in_directory(directory: str, count: int) -> list[str]:
        """The canonical shard-file layout under ``directory``."""
        os.makedirs(directory, exist_ok=True)
        return [
            os.path.join(directory, f"shard-{i:03d}.sqlite") for i in range(count)
        ]

    @classmethod
    def in_directory(cls, directory: str, count: int) -> "ShardSet":
        """``count`` shard files under ``directory`` (created if absent)."""
        return cls(cls.paths_in_directory(directory, count))

    @classmethod
    def in_memory(cls, count: int) -> "ShardSet":
        """In-memory shards — single-process unit tests of the views."""
        if count < 1:
            raise ParameterError("need at least one shard")
        shard_set = cls.__new__(cls)
        shard_set._paths = [":memory:"] * count
        shard_set._databases = [Database() for _ in range(count)]
        return shard_set

    def __len__(self) -> int:
        return len(self._databases)

    @property
    def paths(self) -> list[str]:
        return list(self._paths)

    @property
    def databases(self) -> list[Database]:
        return list(self._databases)

    def index_for(self, token: bytes) -> int:
        return shard_index(token, len(self._databases))

    def database_for(self, token: bytes) -> Database:
        return self._databases[self.index_for(token)]

    def close(self) -> None:
        for database in self._databases:
            database.close()

    def __enter__(self) -> "ShardSet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ShardedSpentTokenStore:
    """:class:`~repro.storage.spent_tokens.SpentTokenStore` over shards."""

    def __init__(self, shards: ShardSet, kind: str):
        self._shards = shards
        self._kind = kind
        self._stores = [SpentTokenStore(db, kind) for db in shards.databases]

    @property
    def kind(self) -> str:
        return self._kind

    def _store_for(self, token_id: bytes) -> SpentTokenStore:
        return self._stores[self._shards.index_for(token_id)]

    def shard_for(self, token_id: bytes) -> int:
        """The token's home shard index (also a trace attribute — the
        index is routing structure, the token itself never leaves)."""
        return self._shards.index_for(token_id)

    def try_spend(
        self, token_id: bytes, *, at: int, transcript: bytes = b""
    ) -> SpentRecord | None:
        from . import tracing

        if tracing.enabled() and tracing.current_context() is not None:
            with tracing.span(
                "shard.spend",
                kind=self._kind,
                shard=self._shards.index_for(token_id),
            ):
                return self._store_for(token_id).try_spend(
                    token_id, at=at, transcript=transcript
                )
        return self._store_for(token_id).try_spend(
            token_id, at=at, transcript=transcript
        )

    def is_spent(self, token_id: bytes) -> bool:
        return self._store_for(token_id).is_spent(token_id)

    def record_for(self, token_id: bytes) -> SpentRecord | None:
        return self._store_for(token_id).record_for(token_id)

    def unspend(self, token_id: bytes) -> bool:
        return self._store_for(token_id).unspend(token_id)

    def unspend_if(self, token_id: bytes, transcript: bytes) -> bool:
        return self._store_for(token_id).unspend_if(token_id, transcript)

    def count(self) -> int:
        return sum(store.count() for store in self._stores)

    def prune_oldest(self, max_records_per_shard: int) -> int:
        """Bound each shard to ``max_records_per_shard`` rows of this kind.

        Cache-flavoured kinds only (the idempotent-replay response
        cache); see :meth:`SpentTokenStore.prune_oldest`.  The bound is
        per shard — tokens hash uniformly, so the global cap is
        approximately ``shards * max_records_per_shard`` without any
        cross-shard coordination.  Returns total rows deleted.
        """
        return sum(
            store.prune_oldest(max_records_per_shard) for store in self._stores
        )

    @property
    def stores(self) -> list[SpentTokenStore]:
        """Per-shard stores in shard order (offline audit iteration)."""
        return list(self._stores)

    def spent_between(self, start: int, end: int) -> list[SpentRecord]:
        merged: list[SpentRecord] = []
        for store in self._stores:
            merged.extend(store.spent_between(start, end))
        merged.sort(key=lambda record: (record.spent_at, record.token_id))
        return merged


def _signed_snapshot(
    ids: list[bytes], signing_key: RsaPrivateKey
) -> tuple[SignedSnapshot, MerkleTree]:
    """The one place a sharded LRL snapshot is assembled and signed.

    Version, count, root and the returned tree all derive from the
    same ``ids`` list — device sync and non-revocation proofs must
    never be built from diverging copies of this logic.
    """
    tree = MerkleTree(ids)
    count = len(ids)
    payload = _snapshot_payload(count, tree.root, count)
    snapshot = SignedSnapshot(
        version=count,
        merkle_root=tree.root,
        count=count,
        signature=signing_key.sign_pkcs1(payload),
    )
    return snapshot, tree


class ShardedRevocationList:
    """:class:`~repro.storage.revocation.RevocationList` over shards.

    Versions are the one API wrinkle: each shard numbers its own
    entries, and the global version is the *total entry count* — still
    strictly monotone (every revocation lands on exactly one shard), so
    snapshot freshness comparisons keep working.  Device sync is driven
    by a **per-shard cursor**: a tuple with one shard-local version per
    shard.  Each shard's versions are contiguous and assigned under an
    immediate transaction, so ``version > cursor[i]`` on shard ``i`` is
    *exactly* the set that cursor has not seen — one indexed range scan
    per shard, no full-list merge, and none of the
    freshness-window-overlap redelivery the previous timestamp-ordered
    scheme needed.  The signed snapshot that rides with a delta is
    bounded by the *new* cursor (``version <= cursor'[i]`` per shard),
    so a revocation landing concurrently with the sync can never be
    covered by the signed root yet missing from the delta — the
    integrity property a device's
    :meth:`~repro.storage.revocation.DeviceRevocationView.apply_sync`
    root check depends on.

    A legacy ``int`` watermark (or a cursor whose arity does not match
    the shard count) cannot be mapped onto per-shard versions and
    degrades to a full resync — devices dedup by licence id, so
    redelivery is harmless, just larger.
    """

    def __init__(self, shards: ShardSet):
        self._shards = shards
        self._lists = [RevocationList(db) for db in shards.databases]

    def _list_for(self, license_id: bytes) -> RevocationList:
        return self._lists[self._shards.index_for(license_id)]

    def revoke(self, license_id: bytes, *, at: int, reason: str) -> int:
        """Route to the home shard; returns that shard's new version.

        Callers on the exchange hot path ignore the return value, so
        this deliberately does NOT compute the global version (one
        COUNT per shard) — :meth:`current_version` serves readers that
        want it.
        """
        return self._list_for(license_id).revoke(license_id, at=at, reason=reason)

    def is_revoked(self, license_id: bytes) -> bool:
        return self._list_for(license_id).is_revoked(license_id)

    def revoked_subset(self, license_ids: Iterable[bytes]) -> set[bytes]:
        by_shard: dict[int, list[bytes]] = {}
        for license_id in license_ids:
            by_shard.setdefault(self._shards.index_for(license_id), []).append(
                license_id
            )
        revoked: set[bytes] = set()
        for index, ids in by_shard.items():
            revoked.update(self._lists[index].revoked_subset(ids))
        return revoked

    def current_version(self) -> int:
        return sum(lst.count() for lst in self._lists)

    def count(self) -> int:
        return sum(lst.count() for lst in self._lists)

    def all_ids(self) -> list[bytes]:
        merged: list[bytes] = []
        for lst in self._lists:
            merged.extend(lst.all_ids())
        merged.sort()
        return merged

    def _normalize_cursor(self, cursor) -> tuple[int, ...]:
        """A per-shard cursor tuple, or all-zeros (= full resync).

        Legacy ``int`` watermarks and cursors from a different shard
        topology are not mappable onto per-shard versions; both degrade
        to a full redelivery, which devices absorb by licence-id dedup.
        """
        shard_count = len(self._lists)
        if cursor is None or isinstance(cursor, int):
            return (0,) * shard_count
        cursor = tuple(int(version) for version in cursor)
        if len(cursor) != shard_count:
            return (0,) * shard_count
        return cursor

    def delta_since(self, cursor) -> tuple[list[RevocationEntry], tuple[int, ...]]:
        """Exact delta past ``cursor``: ``(entries, new_cursor)``.

        One indexed range scan per shard (``version > cursor[i]``);
        entry ``version`` fields are shard-local.  The merged delta is
        ordered by ``(revoked_at, license_id)`` so the stream a device
        sees is deterministic regardless of shard interleaving.
        """
        cursor = self._normalize_cursor(cursor)
        entries: list[RevocationEntry] = []
        new_cursor = list(cursor)
        for index, lst in enumerate(self._lists):
            delta = lst.entries_since(cursor[index])
            if delta:
                # entries_since orders by version; the last one is the
                # shard's new high-water mark.
                new_cursor[index] = delta[-1].version
                entries.extend(delta)
        entries.sort(key=lambda entry: (entry.revoked_at, entry.license_id))
        return entries, tuple(new_cursor)

    def sync_since(
        self, cursor, signing_key: RsaPrivateKey
    ) -> tuple[list[RevocationEntry], SignedSnapshot, tuple[int, ...]]:
        """Delta entries, a signed snapshot, and the advanced cursor.

        The snapshot is bounded by the *new* cursor — per shard, only
        entries with ``version <= new_cursor[i]`` are covered — so it
        describes exactly (device's synced set ∪ this delta) even while
        workers keep revoking concurrently: a late entry has a version
        past the cursor and is excluded from the signed root just as it
        is absent from the delta.  A snapshot root covering an entry
        the delta omits is therefore impossible by construction, not by
        scan timing.
        """
        entries, new_cursor = self.delta_since(cursor)
        ids: list[bytes] = []
        for version, lst in zip(new_cursor, self._lists):
            ids.extend(lst.ids_through(version))
        snapshot, _ = _signed_snapshot(sorted(ids), signing_key)
        return entries, snapshot, new_cursor

    def entries_since(self, cursor) -> list[RevocationEntry]:
        """Delta entries past ``cursor`` (see :meth:`delta_since`)."""
        return self.delta_since(cursor)[0]

    # -- snapshot / distribution (same contract as the single store) ----

    def merkle_tree(self) -> MerkleTree:
        return MerkleTree(self.all_ids())

    def snapshot_with_tree(
        self, signing_key: RsaPrivateKey
    ) -> tuple[SignedSnapshot, MerkleTree]:
        """A signed snapshot plus the exact tree it was computed from.

        One merged scan feeds version, count, root *and* the returned
        tree: workers revoke concurrently with gateway reads, and a
        snapshot assembled from two scans could sign a root that does
        not match its own version/count — or worse, hand a caller a
        proof computed against a different tree than the signed root.
        (The global version *is* the entry count, so a single scan
        covers all three fields.)
        """
        return _signed_snapshot(self.all_ids(), signing_key)

    def snapshot(self, signing_key: RsaPrivateKey) -> SignedSnapshot:
        snapshot, _ = self.snapshot_with_tree(signing_key)
        return snapshot

    def bloom_filter(self, fp_rate: float = 0.01):
        from ..storage.bloom import BloomFilter

        return BloomFilter.build(self.all_ids(), fp_rate=fp_rate)


class ShardedLicenseStore:
    """:class:`~repro.storage.licenses.LicenseStore` over shards."""

    def __init__(self, shards: ShardSet):
        self._shards = shards
        self._stores = [LicenseStore(db) for db in shards.databases]

    def _store_for(self, license_id: bytes) -> LicenseStore:
        return self._stores[self._shards.index_for(license_id)]

    def insert(self, license_id: bytes, **fields) -> None:
        self._store_for(license_id).insert(license_id, **fields)

    def get(self, license_id: bytes) -> LicenseRecord | None:
        return self._store_for(license_id).get(license_id)

    def set_status(self, license_id: bytes, status: str) -> None:
        self._store_for(license_id).set_status(license_id, status)

    def transition(
        self, license_id: bytes, *, from_status: str, to_status: str
    ) -> bool:
        return self._store_for(license_id).transition(
            license_id, from_status=from_status, to_status=to_status
        )

    def by_holder(self, holder: bytes) -> list[LicenseRecord]:
        return self._merge(lambda store: store.by_holder(holder))

    def by_content(self, content_id: str) -> list[LicenseRecord]:
        return self._merge(lambda store: store.by_content(content_id))

    def issued_between(self, start: int, end: int) -> list[LicenseRecord]:
        return self._merge(lambda store: store.issued_between(start, end))

    def count(self, *, kind: str | None = None, status: str | None = None) -> int:
        return sum(store.count(kind=kind, status=status) for store in self._stores)

    def distinct_holders(self) -> int:
        holders: set[bytes] = set()
        for database in self._shards.databases:
            rows = database.query_all(
                "SELECT DISTINCT holder FROM licenses WHERE holder IS NOT NULL"
            )
            holders.update(row[0] for row in rows)
        return len(holders)

    def _merge(self, select) -> list[LicenseRecord]:
        merged: list[LicenseRecord] = []
        for store in self._stores:
            merged.extend(select(store))
        merged.sort(key=lambda record: (record.issued_at, record.license_id))
        return merged


class ShardedAuditLog:
    """Hash-chained audit logs, one chain per shard.

    Each writer appends to its *preferred* shard's chain (workers get
    distinct preferred shards, so chains are mostly single-writer and
    never contended), while reads merge every chain into one timeline.
    Tamper evidence is preserved per chain: :meth:`verify_chain` checks
    all of them.
    """

    def __init__(self, shards: ShardSet, *, preferred_shard: int = 0):
        self._shards = shards
        self._logs = [AuditLog(db) for db in shards.databases]
        self._preferred = preferred_shard % len(self._logs)

    def append(self, *, at: int, actor: str, event: str, payload: dict) -> AuditEntry:
        return self._logs[self._preferred].append(
            at=at, actor=actor, event=event, payload=payload
        )

    def entries(self, *, event: str | None = None) -> list[AuditEntry]:
        merged: list[tuple[int, int, int, AuditEntry]] = []
        for shard, log in enumerate(self._logs):
            merged.extend(
                (entry.at, shard, entry.seq, entry)
                for entry in log.entries(event=event)
            )
        merged.sort(key=lambda item: item[:3])
        return [entry for *_, entry in merged]

    def count(self) -> int:
        return sum(log.count() for log in self._logs)

    def verify_chain(self) -> int:
        return sum(log.verify_chain() for log in self._logs)

    def chains(self) -> Iterator[AuditLog]:
        return iter(self._logs)
