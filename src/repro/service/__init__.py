"""The sharded multi-process service layer.

The paper's provider is one trusted desk; this package is the seam
that lets the same protocol code serve heavy traffic:

- :mod:`repro.service.wire` — canonical byte encodings (via the
  signing codec) for every protocol request/response, so messages can
  cross a process or network boundary;
- :mod:`repro.service.sharding` — the provider's stores partitioned
  across N per-shard SQLite files by token-id hash, behind views that
  preserve the single-store APIs;
- :mod:`repro.service.workers` — worker processes running the existing
  batch pipelines (``sell_batch`` / ``redeem_batch`` /
  ``deposit_batch``) against the shared shards, with warm fastexp
  tables and batched queue hand-off;
- :mod:`repro.service.pool` — the transport-agnostic core: worker
  process lifecycle, shard-affine routing, ticket bookkeeping and
  dead-worker detection, shared by both front doors;
- :mod:`repro.service.transport` — the pluggable-transport seam:
  length-prefixed framing with a strict decoder, and the
  ``Transport``/``Listener`` interfaces;
- :mod:`repro.service.ledger` — the bank's durable money layer:
  per-shard SQLite ledger stores (restart-safe balances, auditable
  entries, deposit transcripts) behind a sharded view, plus the
  cross-shard deposit sequencer whose durable-intent two-phase commit
  closes the spend-then-crash window;
- :mod:`repro.service.gateway` — the in-process front door: routes
  requests to shard-affine workers and exposes the familiar provider
  surface *and* the ``BankSurface`` (withdraw / deposit / balance /
  statement), so users, devices and the marketplace simulator drive
  it exactly like the in-process actors;
- :mod:`repro.service.netserver` — the network front door: one
  asyncio process accepting many client connections over TCP, plus
  the blocking ``NetClient`` that presents the same provider surface
  from across the wire;
- :mod:`repro.service.metrics` — the dependency-free observability
  surface: counters, gauges and latency histograms shared by the pool
  and the socket server, rendered as a Prometheus text exposition and
  a codec snapshot, and feeding the admission-control ceilings that
  shed overload with a typed ``OverloadedError``.

``docs/architecture.md`` is the map of how these fit; ``docs/
metrics.md`` documents every exported metric name.
"""

from .gateway import BankSurface, ProviderSurface, ServiceGateway
from .ledger import DepositSequencer, ShardedLedger, recover_intents
from .metrics import (
    SERVICE_METRIC_SPECS,
    MetricsRegistry,
    build_service_registry,
)
from .netserver import NetClient, NetServer
from .pool import WorkerPool
from .sharding import ShardSet, shard_index
from .transport import FrameDecoder, Listener, Transport
from .workers import ServiceConfig

__all__ = [
    "ServiceGateway",
    "ServiceConfig",
    "ProviderSurface",
    "BankSurface",
    "ShardedLedger",
    "DepositSequencer",
    "recover_intents",
    "ShardSet",
    "shard_index",
    "WorkerPool",
    "NetServer",
    "NetClient",
    "Transport",
    "Listener",
    "FrameDecoder",
    "MetricsRegistry",
    "SERVICE_METRIC_SPECS",
    "build_service_registry",
]
