"""Privacy-first distributed tracing for the service layer.

Dependency-free span recorder: every span carries a 16-byte trace id,
an 8-byte span id, an optional parent span id, a monotonic start and
duration, and a **typed attribute allowlist** enforced at record time.
The paper's core claim is functionality *without surveillance*, so the
allowlist is the load-bearing part: spans may describe operation
structure and timing (op kind, shard index, pipeline stage, batch
size) but can never carry tokens, pseudonyms, account ids, or coin
serials.  The validator rejects

* span names and attribute keys that are not declared in
  :data:`SPAN_SPECS`,
* ``bytes`` values outright (ids in this codebase are byte strings),
* strings longer than 64 characters, strings outside a conservative
  charset, and strings that *look like* hex material (16+ hex chars) —
  the shape every token/serial/account digest in the system takes,
* error payloads that are not bare exception class names (exception
  *messages* routinely embed coin serials).

Capture is tail-based: spans are always recorded into bounded
per-process buffers (cheap), but a full trace is only *kept* when its
boundary span ends slow (duration >= the configured threshold), when
any span in the trace ended in a typed error, or when retention is
forced (recovery traces).  Kept traces live in a bounded ring; the
newest ``keep`` survive.  Non-kept traces linger in a bounded pending
map so a later-ending boundary (e.g. ``client.call`` wrapping
``net.request``) can still promote them.

Two sinks exist:

* :class:`SpanRecorder` — the gateway/client process.  Owns the keep
  decision, the kept ring, the pending map, and on-keep hooks (used to
  stamp latency-histogram exemplars).
* :class:`SpanCollector` — worker processes.  A bounded staging area;
  the worker drains a trace's spans and ships them back on the
  response queue, where the pool's collector thread ingests them into
  the recorder *before* the waiting caller is woken.

Setting the environment variable ``P2DRM_TRACE_DUMP`` to a file path
makes every finished span append one JSON line (``O_APPEND`` writes
are atomic for these sizes, so multi-process dumps interleave whole
lines).  ``tools/trace_lint.py`` re-validates such dumps in strict
mode in CI.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass

from ..errors import ParameterError

__all__ = [
    "SPAN_SPECS",
    "SpanCollector",
    "SpanRecorder",
    "TraceContext",
    "activate",
    "configure",
    "current_context",
    "disable",
    "enabled",
    "install",
    "kept_traces",
    "new_span_id",
    "record_span",
    "recorder",
    "span",
    "validate_attrs",
]

TRACE_ID_BYTES = 16
SPAN_ID_BYTES = 8

# ---------------------------------------------------------------------------
# Span registry (the allowlist).


@dataclass(frozen=True)
class SpanSpec:
    """One allowed span name and its typed attribute allowlist."""

    name: str
    help: str
    attrs: tuple[tuple[str, type], ...] = ()


SPAN_SPECS: tuple[SpanSpec, ...] = (
    SpanSpec("client.call", "Transport.call/call_many boundary (root of a trace)",
             (("op", str), ("n", int))),
    SpanSpec("net.request", "TCP server handling of one request frame",
             (("op", str), ("frame", str))),
    SpanSpec("net.frame.decode", "frame decode time on the server event loop",
             (("frames", int),)),
    SpanSpec("pool.queue", "request queue wait (submit to worker drain)",
             (("worker", int),)),
    SpanSpec("pool.request", "ticket lifetime seen by the pool collector",
             (("op", str), ("worker", int), ("outcome", str))),
    SpanSpec("pool.collect", "gather wait for outstanding tickets",
             (("n", int),)),
    SpanSpec("worker.request", "one request processed inside a worker",
             (("op", str), ("worker", int))),
    SpanSpec("worker.stage", "one pipeline stage of a batched sell/redeem",
             (("op", str), ("stage", str), ("n", int))),
    SpanSpec("shard.spend", "spent-token store write on one shard",
             (("kind", str), ("shard", int))),
    SpanSpec("ledger.intent.create", "2PC phase 0: durable pending intent",
             (("shard", int), ("coins", int))),
    SpanSpec("ledger.spend", "2PC phase 1: one coin spent on its home shard",
             (("shard", int),)),
    SpanSpec("ledger.commit", "2PC commit point (single shard transaction)",
             (("shard", int),)),
    SpanSpec("ledger.release", "2PC failure path: release own spends",
             (("n", int),)),
    SpanSpec("ledger.abort", "2PC failure path: durable abort of the intent",
             (("shard", int),)),
    SpanSpec("ledger.recover", "presumed-abort recovery sweep at gateway start",
             (("aborted", int), ("released", int))),
    SpanSpec("ledger.recover.intent", "one pending intent presumed aborted",
             (("shard", int), ("released", int))),
    SpanSpec("client.retry", "one retry attempt inside the reconnecting client",
             (("op", str), ("attempt", int), ("reason", str))),
)

_SPECS_BY_NAME: dict[str, dict[str, type]] = {
    spec.name: dict(spec.attrs) for spec in SPAN_SPECS
}

_SAFE_STR = re.compile(r"[A-Za-z0-9_.:\- ]*\Z")
_HEXISH = re.compile(r"[0-9a-fA-F]{16,}")
_MAX_STR = 64


def validate_attrs(name: str, attrs: dict) -> None:
    """Reject spans that stray outside the privacy allowlist.

    Raises :class:`ParameterError` — tracing bugs must fail loudly in
    tests rather than silently leak identifiers into the trace surface.
    """

    allowed = _SPECS_BY_NAME.get(name)
    if allowed is None:
        raise ParameterError(f"span name not in registry: {name!r}")
    for key, value in attrs.items():
        want = allowed.get(key)
        if want is None:
            raise ParameterError(f"span {name!r}: attribute {key!r} not in allowlist")
        if want is int:
            if isinstance(value, bool) or not isinstance(value, int):
                raise ParameterError(f"span {name!r}: attribute {key!r} must be int")
        elif want is str:
            if not isinstance(value, str):
                raise ParameterError(f"span {name!r}: attribute {key!r} must be str")
            if len(value) > _MAX_STR:
                raise ParameterError(f"span {name!r}: attribute {key!r} too long")
            if not _SAFE_STR.match(value):
                raise ParameterError(f"span {name!r}: attribute {key!r} has unsafe characters")
            if _HEXISH.search(value):
                raise ParameterError(
                    f"span {name!r}: attribute {key!r} looks like hex id material"
                )
        else:  # pragma: no cover - registry only declares int/str today
            raise ParameterError(f"span {name!r}: unsupported attribute type for {key!r}")


def validate_error(name: str, error: str) -> None:
    """Error fields carry bare exception class names, never messages."""

    if error and not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]{0,63}", error):
        raise ParameterError(f"span {name!r}: error must be a bare exception class name")


# ---------------------------------------------------------------------------
# Trace context + ambient propagation.


@dataclass(frozen=True)
class TraceContext:
    """The (trace id, current span id) pair that crosses hop boundaries."""

    trace_id: bytes
    span_id: bytes


_local = threading.local()


def _stack() -> list[TraceContext]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def current_context() -> TraceContext | None:
    stack = getattr(_local, "stack", None)
    return stack[-1] if stack else None


@contextmanager
def activate(ctx: TraceContext | None):
    """Make ``ctx`` the ambient context without opening a span."""

    if ctx is None:
        yield
        return
    stack = _stack()
    stack.append(ctx)
    try:
        yield
    finally:
        stack.pop()


def new_span_id() -> bytes:
    return os.urandom(SPAN_ID_BYTES)


def _new_trace_id() -> bytes:
    return os.urandom(TRACE_ID_BYTES)


# ---------------------------------------------------------------------------
# Sinks.


def _record(trace_id: bytes, span_id: bytes, parent_id: bytes, name: str,
            start: float, duration: float, status: str, error: str,
            attrs: dict) -> dict:
    validate_attrs(name, attrs)
    validate_error(name, error)
    return {
        "trace": trace_id,
        "span": span_id,
        "parent": parent_id,
        "name": name,
        "start": start,
        "duration": duration,
        "status": status,
        "error": error,
        "attrs": attrs,
    }


def public_span(rec: dict) -> dict:
    """Codec/JSON-friendly projection: hex ids, integer microseconds."""

    return {
        "span": rec["span"].hex(),
        "parent": rec["parent"].hex() if rec["parent"] else "",
        "name": rec["name"],
        "start_micros": int(rec["start"] * 1_000_000),
        "duration_micros": int(rec["duration"] * 1_000_000),
        "status": rec["status"],
        "error": rec["error"],
        "attrs": dict(rec["attrs"]),
    }


_DUMP_ENV = "P2DRM_TRACE_DUMP"
_dump_lock = threading.Lock()
_dump_fd: int | None = None
_dump_path: str | None = None


def _dump(rec: dict) -> None:
    path = os.environ.get(_DUMP_ENV)
    if not path:
        return
    global _dump_fd, _dump_path
    line = json.dumps({"trace": rec["trace"].hex(), **public_span(rec)},
                      sort_keys=True) + "\n"
    with _dump_lock:
        if _dump_fd is None or _dump_path != path:
            _dump_fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            _dump_path = path
        os.write(_dump_fd, line.encode("ascii"))


class SpanCollector:
    """Worker-side staging buffer: spans grouped by trace, drained per
    response and shipped back on the response queue."""

    def __init__(self, *, max_spans: int = 2048):
        self._lock = threading.Lock()
        self._by_trace: OrderedDict[bytes, list[dict]] = OrderedDict()
        self._count = 0
        self._max = max_spans
        self.dropped = 0

    def record(self, rec: dict) -> None:
        _dump(rec)
        with self._lock:
            if self._count >= self._max:
                # Evict the stalest trace wholesale; a trace missing its
                # oldest spans is worse than a dropped trace.
                _, evicted = self._by_trace.popitem(last=False)
                self._count -= len(evicted)
                self.dropped += len(evicted)
            spans = self._by_trace.get(rec["trace"])
            if spans is None:
                spans = self._by_trace[rec["trace"]] = []
            spans.append(rec)
            self._count += 1

    def drain(self, trace_id: bytes) -> list[dict]:
        with self._lock:
            spans = self._by_trace.pop(trace_id, None)
            if not spans:
                return []
            self._count -= len(spans)
            return spans


class SpanRecorder:
    """Gateway/client-side sink with the tail-based keep decision."""

    def __init__(self, *, latency_threshold: float = 0.25, keep: int = 64,
                 max_pending: int = 512, max_spans_per_trace: int = 256):
        self._lock = threading.Lock()
        self._pending: OrderedDict[bytes, list[dict]] = OrderedDict()
        self._kept: OrderedDict[bytes, dict] = OrderedDict()
        self._hooks: list = []
        self.latency_threshold = float(latency_threshold)
        self._keep = int(keep)
        self._max_pending = int(max_pending)
        self._max_spans = int(max_spans_per_trace)
        self.dropped_spans = 0
        self.dropped_traces = 0

    def on_keep(self, hook) -> None:
        """Register ``hook(trace_id, entry)`` called when a trace is kept."""

        with self._lock:
            self._hooks.append(hook)

    def record(self, rec: dict, *, dump: bool = True) -> None:
        if dump:
            _dump(rec)
        with self._lock:
            self._store_locked(rec)

    def ingest(self, recs) -> None:
        """Absorb span records shipped from a worker (already dumped there)."""

        with self._lock:
            for rec in recs:
                self._store_locked(rec)

    def _store_locked(self, rec: dict) -> None:
        trace_id = rec["trace"]
        kept = self._kept.get(trace_id)
        if kept is not None:
            if len(kept["spans"]) < self._max_spans:
                kept["spans"].append(rec)
            else:
                self.dropped_spans += 1
            return
        spans = self._pending.get(trace_id)
        if spans is None:
            while len(self._pending) >= self._max_pending:
                _, evicted = self._pending.popitem(last=False)
                self.dropped_spans += len(evicted)
                self.dropped_traces += 1
            spans = self._pending[trace_id] = []
        if len(spans) < self._max_spans:
            spans.append(rec)
        else:
            self.dropped_spans += 1

    def finish_boundary(self, rec: dict, *, force: bool = False) -> None:
        """Record a boundary span and run the tail-based keep decision."""

        _dump(rec)
        trace_id = rec["trace"]
        hooks: list = []
        entry: dict | None = None
        with self._lock:
            self._store_locked(rec)
            if trace_id in self._kept:
                return
            spans = self._pending.get(trace_id, ())
            errored = any(s["status"] == "error" for s in spans)
            slow = rec["duration"] >= self.latency_threshold
            if not (force or errored or slow):
                return
            reason = "forced" if force else ("error" if errored else "slow")
            entry = {"reason": reason, "spans": self._pending.pop(trace_id, [])}
            self._kept[trace_id] = entry
            while len(self._kept) > self._keep:
                self._kept.popitem(last=False)
            hooks = list(self._hooks)
        for hook in hooks:
            hook(trace_id, entry)

    def keep_count(self) -> int:
        with self._lock:
            return len(self._kept)

    def traces(self) -> list[dict]:
        """Kept traces, oldest first, in codec/JSON-friendly form."""

        with self._lock:
            items = [(tid, entry["reason"], list(entry["spans"]))
                     for tid, entry in self._kept.items()]
        return [
            {
                "trace": tid.hex(),
                "reason": reason,
                "spans": [public_span(rec) for rec in spans],
            }
            for tid, reason, spans in items
        ]

    def all_spans(self) -> list[dict]:
        """Every span currently held (pending + kept) — test/audit hook."""

        with self._lock:
            out = []
            for spans in self._pending.values():
                out.extend(spans)
            for entry in self._kept.values():
                out.extend(entry["spans"])
            return list(out)


# ---------------------------------------------------------------------------
# Module-level sink + the span API.

_SINK = None


def configure(*, latency_threshold: float = 0.25, keep: int = 64) -> SpanRecorder:
    """Install a :class:`SpanRecorder` as this process's sink."""

    global _SINK
    sink = SpanRecorder(latency_threshold=latency_threshold, keep=keep)
    _SINK = sink
    return sink


def install(sink) -> None:
    """Install an explicit sink (workers install a :class:`SpanCollector`)."""

    global _SINK
    _SINK = sink


def disable() -> None:
    global _SINK
    _SINK = None


def enabled() -> bool:
    return _SINK is not None


def sink():
    return _SINK


def recorder() -> SpanRecorder | None:
    return _SINK if isinstance(_SINK, SpanRecorder) else None


def collector() -> SpanCollector | None:
    return _SINK if isinstance(_SINK, SpanCollector) else None


def kept_traces() -> list[dict]:
    rec = recorder()
    return rec.traces() if rec is not None else []


class _Span:
    __slots__ = ("trace_id", "span_id", "parent_id", "name", "_attrs",
                 "_error", "_status")

    def __init__(self, trace_id, span_id, parent_id, name, attrs):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self._attrs = attrs
        self._error = ""
        self._status = "ok"

    def set(self, key: str, value) -> None:
        self._attrs[key] = value

    def mark_error(self, error_type: str) -> None:
        self._status = "error"
        self._error = error_type


class _NoopSpan:
    __slots__ = ()

    def set(self, key, value):
        pass

    def mark_error(self, error_type):
        pass


_NOOP = _NoopSpan()


@contextmanager
def span(name: str, *, root: bool = False, boundary: bool = False,
         force_keep: bool = False, ctx: TraceContext | None = None, **attrs):
    """Open a span.  No-op when tracing is disabled, or when there is no
    ambient/explicit parent and ``root`` is false."""

    sink = _SINK
    parent = ctx if ctx is not None else current_context()
    if sink is None or (parent is None and not root):
        yield _NOOP
        return
    trace_id = parent.trace_id if parent is not None else _new_trace_id()
    parent_id = parent.span_id if parent is not None else b""
    sp = _Span(trace_id, new_span_id(), parent_id, name, attrs)
    stack = _stack()
    stack.append(TraceContext(trace_id, sp.span_id))
    start = time.monotonic()
    try:
        yield sp
    except BaseException as exc:
        sp.mark_error(type(exc).__name__)
        raise
    finally:
        duration = time.monotonic() - start
        stack.pop()
        rec = _record(trace_id, sp.span_id, parent_id, name, start, duration,
                      sp._status, sp._error, sp._attrs)
        if boundary and isinstance(sink, SpanRecorder):
            sink.finish_boundary(rec, force=force_keep)
        else:
            sink.record(rec)


def record_span(name: str, *, trace_id: bytes, parent_id: bytes,
                start: float, duration: float, span_id: bytes | None = None,
                status: str = "ok", error: str = "",
                attrs: dict | None = None) -> dict | None:
    """Record a span with externally-measured timing (queue waits, frame
    decode, replicated batch stages).  Returns the record, or ``None``
    when tracing is disabled."""

    sink = _SINK
    if sink is None:
        return None
    rec = _record(trace_id, span_id if span_id is not None else new_span_id(),
                  parent_id, name, start, max(0.0, duration), status, error,
                  attrs if attrs is not None else {})
    sink.record(rec)
    return rec
