"""The asyncio socket front-end and its blocking client.

One :class:`NetServer` process fronts a whole worker pool: it accepts
many concurrent client connections on a single event loop, reads
length-prefixed frames (:mod:`repro.service.transport`), and
multiplexes every request onto the shared
:class:`~repro.service.pool.WorkerPool` with the same shard-affine
routing the in-process gateway uses.  Responses travel back as the
*exact bytes* the worker produced — the server never re-encodes a
protocol payload — so the socket path is byte-identical to the
in-process path by construction, not by luck.

Concurrency model:

- the event loop owns all socket I/O; nothing on it ever blocks;
- each request frame is handed to a small thread pool that performs
  the blocking pool submit/gather (cheap waits on the pool's
  condition variable), then the response frame is written back under
  a per-connection lock;
- **per-connection backpressure**: a connection may have at most
  ``max_inflight`` requests outstanding.  The read loop stops pulling
  bytes off the socket while at the limit, so a firehosing client is
  throttled by TCP flow control instead of ballooning the server's
  memory — and one greedy connection cannot starve the others.

The read surface (catalog, prices, packages, revocation sync,
non-revocation proofs) crosses as **control frames**: codec-encoded
``{"op", "args"}`` bodies answered from the gateway's WAL read views.
Errors cross with full fidelity via the wire error marshalling, so a
remote client sees the same typed exceptions an in-process caller
does.

Trust boundary: the TCP surface is **deposit-only by default**.  The
``withdraw`` wire kind debits a named account with no credential
beyond the name, which is the in-process bank's library-level trust
model — fine inside one process, remotely drainable balances on an
open socket.  ``NetServer(allow_withdraw=True)`` opts a deployment in
when every client is trusted.

:class:`NetClient` is the blocking counterpart: it speaks the framing
protocol over one TCP connection, pipelines freely (requests correlate
by id, so batch submits don't wait turn-by-turn), and exposes the same
provider-surface facade as :class:`~repro.service.gateway.
ServiceGateway` — code written against one drives the other.
"""

from __future__ import annotations

import asyncio
import itertools
import socket as socket_module
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from ..core.actors.bank import decompose_amount
from ..core.content import ContentPackage
from ..core.messages import Coin
from ..crypto.blind_rsa import verify_blind_signature
from ..errors import (
    PaymentError,
    OverloadedError,
    ReproError,
    ServiceError,
    TruncatedFrameError,
    WireError,
)
from ..storage.contents import CatalogEntry
from ..storage.ledger import LedgerEntry
from ..storage.merkle import InclusionProof, NonInclusionProof
from ..storage.revocation import RevocationEntry, SignedSnapshot
from . import tracing, wire
from .gateway import BankSurface, ProviderSurface, ServiceGateway
from .transport import (
    FRAME_CONTROL,
    FRAME_CONTROL_REPLY,
    FRAME_REQUEST,
    FRAME_REQUEST_PINNED,
    FRAME_RESPONSE,
    MAX_FRAME_PAYLOAD,
    FrameDecoder,
    Listener,
    decode_pinned,
    encode_frame,
    encode_pinned,
)

__all__ = ["NetServer", "NetClient", "DEFAULT_MAX_INFLIGHT"]

#: Default per-connection ceiling on outstanding requests.  Matches a
#: worker batch nicely: one pipelining client can fill a worker's
#: coalescing window, but cannot queue unbounded work.
DEFAULT_MAX_INFLIGHT = 32

_READ_CHUNK = 65536

#: Frame-type label values for ``p2drm_net_frames_total``.
_FRAME_NAMES = {
    FRAME_REQUEST: "request",
    FRAME_REQUEST_PINNED: "request_pinned",
    FRAME_CONTROL: "control",
    FRAME_RESPONSE: "response",
    FRAME_CONTROL_REPLY: "control_reply",
}


def _peek_kind(payload: bytes) -> str:
    """Best-effort op kind of an encoded request (for shed labels);
    never raises — an overloaded server must not pay a full decode,
    let alone crash, to label a request it is refusing."""
    from .. import codec

    try:
        envelope = codec.decode(payload)
        kind = envelope.get("kind")
        return kind if isinstance(kind, str) else "unknown"
    except Exception:
        return "unknown"


# -- control-channel marshalling --------------------------------------------


def _catalog_entry_dict(entry: CatalogEntry) -> dict:
    return {
        "content_id": entry.content_id,
        "title": entry.title,
        "price_cents": entry.price_cents,
        "added_at": entry.added_at,
        "package_size": entry.package_size,
    }


def _catalog_entry_from(data: dict) -> CatalogEntry:
    return CatalogEntry(
        content_id=str(data["content_id"]),
        title=str(data["title"]),
        price_cents=int(data["price_cents"]),
        added_at=int(data["added_at"]),
        package_size=int(data["package_size"]),
    )


def _revocation_entry_dict(entry: RevocationEntry) -> dict:
    return {
        "license_id": entry.license_id,
        "version": entry.version,
        "revoked_at": entry.revoked_at,
        "reason": entry.reason,
    }


def _revocation_entry_from(data: dict) -> RevocationEntry:
    return RevocationEntry(
        license_id=bytes(data["license_id"]),
        version=int(data["version"]),
        revoked_at=int(data["revoked_at"]),
        reason=str(data["reason"]),
    )


def _inclusion_dict(proof: InclusionProof | None) -> dict | None:
    return None if proof is None else proof.as_dict()


def _inclusion_from(data: dict | None) -> InclusionProof | None:
    return None if data is None else InclusionProof.from_dict(data)


def _non_inclusion_dict(proof: NonInclusionProof) -> dict:
    return {
        "left": proof.left_leaf,
        "left_proof": _inclusion_dict(proof.left_proof),
        "right": proof.right_leaf,
        "right_proof": _inclusion_dict(proof.right_proof),
    }


def _non_inclusion_from(data: dict) -> NonInclusionProof:
    return NonInclusionProof(
        left_leaf=None if data["left"] is None else bytes(data["left"]),
        left_proof=_inclusion_from(data["left_proof"]),
        right_leaf=None if data["right"] is None else bytes(data["right"]),
        right_proof=_inclusion_from(data["right_proof"]),
    )


# -- the server --------------------------------------------------------------


class NetServer(Listener):
    """Asyncio acceptor multiplexing client connections onto the pool."""

    def __init__(
        self,
        gateway: ServiceGateway,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        max_payload: int = MAX_FRAME_PAYLOAD,
        max_server_inflight: int | None = None,
        metrics_port: int | None = None,
        allow_withdraw: bool = False,
    ):
        if max_inflight < 1:
            raise ServiceError("need max_inflight >= 1")
        if max_server_inflight is not None and max_server_inflight < 1:
            raise ServiceError("need max_server_inflight >= 1 (or None)")
        self._gateway = gateway
        #: The TCP surface is deposit-only by default.  Withdrawals
        #: debit a *named* account on nothing but the account name —
        #: the in-process bank's library-level trust model — so serving
        #: them to arbitrary network clients would make every balance
        #: (the provider's revenue account in the hello reply included)
        #: remotely drainable.  ``allow_withdraw=True`` opts in for
        #: deployments whose clients are trusted (a benchmark arm, a
        #: private network); the queue transport is unaffected.
        self._allow_withdraw = allow_withdraw
        self._host = host
        self._port = port
        self._max_inflight = max_inflight
        self._max_payload = max_payload
        #: Whole-server ceiling on request frames dispatched to the
        #: pool at once (None = unbounded).  The per-connection limit
        #: throttles one greedy client; this one bounds the *sum* over
        #: many polite clients, shedding with a typed retry-later
        #: error instead of queueing without bound.
        self._max_server_inflight = max_server_inflight
        #: Loop-confined: touched only on the event-loop thread.
        self._server_inflight = 0
        self._metrics_port = metrics_port
        self._metrics_address: tuple[str, int] | None = None
        self._conn_ids = itertools.count()
        #: Loop-confined: live connection handlers (task -> writer),
        #: registered at accept and retired in each handler's finally;
        #: shutdown closes the writers and awaits the tasks so no
        #: handler is ever left for blanket task cancellation.
        self._conns: dict[asyncio.Task, asyncio.StreamWriter] = {}
        registry = gateway.metrics
        self._registry = registry
        self._m_connections = registry.get("p2drm_net_connections")
        self._m_conn_inflight = registry.get("p2drm_net_connection_inflight")
        self._m_frames = registry.get("p2drm_net_frames_total")
        self._m_shed = registry.get("p2drm_shed_total")
        self._m_requests = registry.get("p2drm_requests_total")
        self._m_replay_hits = registry.get("p2drm_replay_hits_total")
        self._m_zero_copy = registry.get("p2drm_frames_zero_copy_total")
        # Sized for the blocking pool waits: every slot is a thread
        # parked on a condition variable, so the cap is about bounding
        # bookkeeping, not CPU.
        self._executor = ThreadPoolExecutor(
            max_workers=min(128, max(16, 4 * max_inflight)),
            thread_name_prefix="p2drm-net",
        )
        #: Control ops touch the gateway's SQLite read views from
        #: executor threads; one lock serializes them so the views
        #: never see interleaved cross-thread statements.  They are
        #: cheap local reads — contention here is not a hot path.
        self._control_lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._address: tuple[str, int] | None = None
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Bind and serve on a background event-loop thread; returns
        the bound ``(host, port)`` (port 0 resolves to a real one)."""
        if self._thread is not None:
            raise ServiceError("server already started")
        self._thread = threading.Thread(
            target=self._run_loop, name="p2drm-netserver", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise ServiceError("socket server failed to start in time")
        if self._startup_error is not None:
            raise ServiceError(
                f"socket server failed to bind: {self._startup_error!r}"
            )
        assert self._address is not None
        return self._address

    @property
    def address(self) -> tuple[str, int]:
        if self._address is None:
            raise ServiceError("server not started")
        return self._address

    @property
    def metrics_address(self) -> tuple[str, int]:
        """Bound ``(host, port)`` of the Prometheus scrape endpoint
        (only exists when the server was built with ``metrics_port``)."""
        if self._metrics_address is None:
            raise ServiceError("server has no metrics endpoint")
        return self._metrics_address

    @property
    def metrics(self):
        """The registry shared with the gateway's worker pool."""
        return self._registry

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already gone
        if self._thread is not None:
            self._thread.join(timeout=30)
        self._executor.shutdown(wait=False)

    def __enter__(self) -> "NetServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- event loop --------------------------------------------------------

    def _run_loop(self) -> None:
        try:
            asyncio.run(self._serve())
        except BaseException as exc:  # pragma: no cover - defensive
            if self._startup_error is None:
                self._startup_error = exc
            self._started.set()

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._on_connection, self._host, self._port
            )
        except OSError as exc:
            self._startup_error = exc
            self._started.set()
            return
        metrics_server = None
        if self._metrics_port is not None:
            try:
                metrics_server = await asyncio.start_server(
                    self._on_metrics_connection, self._host, self._metrics_port
                )
            except OSError as exc:
                server.close()
                await server.wait_closed()
                self._startup_error = exc
                self._started.set()
                return
            msockname = metrics_server.sockets[0].getsockname()
            self._metrics_address = (msockname[0], msockname[1])
        sockname = server.sockets[0].getsockname()
        self._address = (sockname[0], sockname[1])
        self._started.set()
        try:
            async with server:
                await self._stop.wait()
        finally:
            if metrics_server is not None:
                metrics_server.close()
                await metrics_server.wait_closed()
            # Both listeners are closed: no new connections can arrive.
            # Retire the live ones by closing their transports — the
            # handlers see EOF and exit their normal path — instead of
            # leaving them for asyncio.run's blanket task cancellation
            # (which 3.11's streams machinery reports as an unhandled
            # exception per connection).
            for writer in self._conns.values():
                writer.close()
            if self._conns:
                await asyncio.gather(
                    *self._conns, return_exceptions=True
                )

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        decoder = FrameDecoder(max_payload=self._max_payload)
        zero_copy_seen = 0
        inflight = asyncio.Semaphore(self._max_inflight)
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        conn = f"c{next(self._conn_ids)}"
        me = asyncio.current_task()
        assert me is not None
        self._conns[me] = writer
        self._m_connections.inc()
        self._m_conn_inflight.set(0, conn=conn)
        try:
            while True:
                data = await reader.read(_READ_CHUNK)
                if not data:
                    # A close between frames is a normal goodbye; one
                    # mid-frame lost a request, worth nothing more
                    # than the typed error (nobody is left to tell).
                    try:
                        decoder.finish()
                    except TruncatedFrameError:
                        pass
                    break
                decode_start = time.monotonic() if tracing.enabled() else 0.0
                try:
                    frames = decoder.feed(data)
                except WireError:
                    # Framing violations are unrecoverable: the stream
                    # has no trustworthy boundaries any more.  Drop the
                    # connection; in-flight work still answers nothing
                    # (its frames may be the corrupted ones).
                    break
                if tracing.enabled() and frames:
                    self._record_decode(
                        frames, decode_start, time.monotonic() - decode_start
                    )
                if decoder.zero_copy_frames != zero_copy_seen:
                    self._m_zero_copy.inc(decoder.zero_copy_frames - zero_copy_seen)
                    zero_copy_seen = decoder.zero_copy_frames
                for frame in frames:
                    self._m_frames.inc(
                        type=_FRAME_NAMES.get(frame.type, "unknown"),
                        direction="in",
                    )
                    if frame.type not in (
                        FRAME_REQUEST,
                        FRAME_REQUEST_PINNED,
                        FRAME_CONTROL,
                    ):
                        # Clients must not send response-direction
                        # frames; treat as a protocol violation.
                        frames = None
                        break
                    # Backpressure: stop reading while at the limit.
                    await inflight.acquire()
                    self._m_conn_inflight.inc(1, conn=conn)
                    task = asyncio.ensure_future(
                        self._handle_frame(
                            frame, writer, write_lock, inflight, conn
                        )
                    )
                    tasks.add(task)
                    task.add_done_callback(tasks.discard)
                if frames is None:
                    break
        except OSError:
            # A peer reset mid-stream is the abrupt spelling of the
            # mid-frame close above: any half-sent request is lost and
            # nobody is left to answer.  The read loop is the only
            # place the reset surfaces (response writes park behind
            # the gather below), so catching it here keeps the event
            # loop's log clean without hiding a real defect.
            pass
        finally:
            self._conns.pop(me, None)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            self._m_connections.dec()
            self._m_conn_inflight.remove(conn=conn)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # CancelledError: the loop is shutting down mid-close;
                # nothing left to wait for.
                pass

    def _record_decode(self, frames, start: float, duration: float) -> None:
        """Attribute one ``decoder.feed`` call's cost to the first traced
        request frame it produced (``net.frame.decode``).  The event loop
        decodes whole chunks, so the span carries the frame count rather
        than pretending per-frame timing exists."""
        ctx = None
        for frame in frames:
            if frame.type not in (FRAME_REQUEST, FRAME_REQUEST_PINNED):
                continue
            envelope = frame.payload
            if frame.type == FRAME_REQUEST_PINNED:
                try:
                    _worker, envelope = decode_pinned(envelope)
                except Exception:
                    continue
            ctx = wire.peek_trace(envelope)
            if ctx is not None:
                break
        if ctx is None:
            return
        tracing.record_span(
            "net.frame.decode",
            trace_id=ctx.trace_id,
            parent_id=ctx.span_id,
            start=start,
            duration=duration,
            attrs={"frames": len(frames)},
        )

    async def _handle_frame(
        self,
        frame,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        inflight: asyncio.Semaphore,
        conn: str,
    ) -> None:
        loop = asyncio.get_running_loop()
        counted = False
        try:
            if frame.type == FRAME_CONTROL:
                reply_type = FRAME_CONTROL_REPLY
                payload = await loop.run_in_executor(
                    self._executor, self._serve_control, frame.payload
                )
            elif (
                self._max_server_inflight is not None
                and self._server_inflight >= self._max_server_inflight
            ):
                # Whole-server ceiling: answer a typed retry-later shed
                # right here on the loop — no executor slot, no pool
                # submit, no side effects, so the request is safe to
                # retry.  The ceiling counter is loop-confined, so the
                # check needs no lock.
                reply_type = FRAME_RESPONSE
                kind = _peek_kind(frame.payload)
                self._m_shed.inc(op=kind, reason="server")
                self._m_requests.inc(op=kind, outcome="shed")
                payload = wire.encode_response(
                    OverloadedError(
                        "server overloaded"
                        f" ({self._server_inflight} requests in flight);"
                        " retry later"
                    )
                )
            else:
                reply_type = FRAME_RESPONSE
                self._server_inflight += 1
                counted = True
                payload = await loop.run_in_executor(
                    self._executor, self._serve_request, frame
                )
            try:
                data = encode_frame(
                    reply_type,
                    frame.request_id,
                    payload,
                    max_payload=self._max_payload,
                )
            except WireError as exc:
                # A reply too large for the frame ceiling (a huge
                # package through a small-frame server, say) must
                # still *answer* — a typed error beats a ticket the
                # client waits out.
                data = encode_frame(
                    reply_type,
                    frame.request_id,
                    self._error_payload(reply_type, exc),
                )
            self._m_frames.inc(
                type=_FRAME_NAMES.get(reply_type, "unknown"), direction="out"
            )
            async with write_lock:
                writer.write(data)
                await writer.drain()
        except (ConnectionError, OSError):
            pass  # client went away; the pool side effects stand
        finally:
            if counted:
                self._server_inflight -= 1
            self._m_conn_inflight.dec(conn=conn)
            inflight.release()

    # -- the Prometheus scrape endpoint ------------------------------------

    async def _on_metrics_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one HTTP/1.1 request on the metrics port.

        Deliberately minimal: the only resource is ``GET /metrics``
        (text exposition 0.0.4), the connection always closes after
        one response, and a malformed request head costs the server
        nothing but the 404.  This is a scrape target, not a web
        server.
        """
        me = asyncio.current_task()
        assert me is not None
        self._conns[me] = writer
        try:
            try:
                head = await asyncio.wait_for(
                    reader.readuntil(b"\r\n\r\n"), timeout=10
                )
            except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
                return
            request_line = head.split(b"\r\n", 1)[0].decode("latin-1", "replace")
            parts = request_line.split()
            method = parts[0] if parts else ""
            path = parts[1].split("?", 1)[0] if len(parts) >= 2 else ""
            if method == "GET" and path in ("/metrics", "/"):
                loop = asyncio.get_running_loop()
                text = await loop.run_in_executor(
                    self._executor, self._render_metrics_text
                )
                body = text.encode("utf-8")
                status = b"200 OK"
                ctype = b"text/plain; version=0.0.4; charset=utf-8"
            elif method == "GET" and path == "/traces":
                loop = asyncio.get_running_loop()
                text = await loop.run_in_executor(
                    self._executor, self._render_traces_json
                )
                body = text.encode("utf-8")
                status = b"200 OK"
                ctype = b"application/json; charset=utf-8"
            else:
                body = b"try GET /metrics\n"
                status = b"404 Not Found"
                ctype = b"text/plain; charset=utf-8"
            writer.write(
                b"HTTP/1.1 " + status + b"\r\n"
                b"Content-Type: " + ctype + b"\r\n"
                b"Content-Length: " + str(len(body)).encode("ascii") + b"\r\n"
                b"Connection: close\r\n"
                b"\r\n" + body
            )
            await writer.drain()
        except (ConnectionError, OSError, asyncio.TimeoutError):
            pass  # scraper went away; nothing to clean up
        finally:
            self._conns.pop(me, None)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    # -- blocking halves (executor threads) --------------------------------

    def _render_metrics_text(self) -> str:
        """Prometheus text with the ledger 2PC counts freshly folded
        in (the sequencer runs in worker processes; only a durable
        shard scan sees the pool-wide truth)."""
        with self._control_lock:
            self._gateway.refresh_ledger_metrics()
        return self._registry.render_text()

    def _render_traces_json(self) -> str:
        """``GET /traces``: kept traces plus latency-histogram exemplars.

        The exemplar block is the join key back into ``/metrics``: each
        request-latency label set lists which kept trace exemplifies
        which bucket, so an operator staring at a slow histogram can
        jump straight to a representative trace."""
        import json

        exemplars = []
        latency = self._registry.get("p2drm_request_latency_seconds")
        for labels, _state in latency.samples():
            buckets = latency.exemplars(**labels)
            if buckets:
                exemplars.append({"labels": labels, "buckets": buckets})
        return json.dumps(
            {"traces": tracing.kept_traces(), "exemplars": exemplars},
            sort_keys=True,
        )

    def _serve_request(self, frame) -> bytes:
        """Submit one client request frame to the pool; ALWAYS returns
        response bytes — every failure mode becomes a typed error
        envelope, never an unanswered ticket the client waits out.

        The envelope crosses untouched, so whatever the worker answers
        is what the client receives — byte-identity with the in-process
        path needs no re-encoding step that could drift.
        """
        pool = self._gateway.pool
        try:
            worker = None
            envelope = frame.payload
            if frame.type == FRAME_REQUEST_PINNED:
                worker, envelope = decode_pinned(envelope)
            if (
                not self._allow_withdraw
                and _peek_kind(envelope) == wire.KIND_WITHDRAW
            ):
                # Unauthenticated network clients must not reach the
                # mint: see the allow_withdraw note in __init__.
                return wire.encode_response(
                    ServiceError(
                        "this server is deposit-only: network"
                        " withdrawals are disabled (the operator must"
                        " start NetServer(allow_withdraw=True) to serve"
                        " the mint, and only to trusted clients)"
                    )
                )
            nonce = wire.peek_nonce(envelope)
            if nonce is not None:
                # Front-door idempotent replay: a retry whose original
                # already committed is answered with the original bytes
                # right here — no worker round trip, no second 2PC run.
                # A lookup refusal (original still mid-commit) raises a
                # retryable ServiceError that the arms below encode.
                # Same lock as the control ops: the gateway's SQLite
                # views must not see interleaved cross-thread reads.
                with self._control_lock:
                    cached = self._gateway.replay.lookup(nonce)
                if cached is not None:
                    self._m_replay_hits.inc()
                    return cached
            ctx = wire.peek_trace(envelope) if tracing.enabled() else None
            if ctx is None:
                ticket = pool.submit_encoded(envelope, worker=worker)
                [raw] = pool.gather_raw([ticket])
                return raw
            # The server-side boundary span: parented to the client's
            # root, it owns the tail-based keep decision for requests
            # arriving without a co-resident client.call span.  Typed
            # failures escape through it (auto-marked) before the
            # except arms below turn them into response bytes.
            with tracing.span(
                "net.request",
                ctx=ctx,
                boundary=True,
                op=_peek_kind(envelope),
                frame=_FRAME_NAMES.get(frame.type, "unknown"),
            ) as sp:
                ticket = pool.submit_encoded(
                    envelope, worker=worker, trace=tracing.current_context()
                )
                [raw] = pool.gather_raw([ticket])
                outcome, error_type = wire.peek_response_outcome(raw)
                if outcome == "error" and error_type:
                    sp.mark_error(error_type)
            return raw
        except ReproError as exc:
            # Undecodable, unroutable, or pool trouble: answer directly
            # (the same exception an in-process caller sees).
            return wire.encode_response(exc)
        except Exception as exc:
            # Anything else is a server-side defect, but the client
            # still deserves an answer instead of a timeout.
            return wire.encode_response(
                ServiceError(f"request failed: {exc!r}")
            )

    def _error_payload(self, reply_type: int, error: BaseException) -> bytes:
        """A typed-error payload in whichever channel the reply uses."""
        from .. import codec

        failure = (
            error
            if isinstance(error, ReproError)
            else ServiceError(f"reply failed: {error!r}")
        )
        if reply_type == FRAME_RESPONSE:
            return wire.encode_response(failure)
        return codec.encode({"ok": False, "error": wire.encode_error(failure)})

    def _serve_control(self, payload: bytes) -> bytes:
        """Answer one read-surface call from the gateway's read views."""
        from .. import codec

        try:
            body = codec.decode(payload)
            if not isinstance(body, dict):
                raise WireError("control body must be a dict")
            op = body.get("op")
            args = body.get("args")
            if not isinstance(args, dict):
                raise WireError("control args must be a dict")
            handler = _CONTROL_OPS.get(op)
            if handler is None:
                raise WireError(f"unknown control op {op!r}")
            with self._control_lock:
                value = handler(self._gateway, args)
        except ReproError as exc:
            return codec.encode({"ok": False, "error": wire.encode_error(exc)})
        except Exception as exc:  # pragma: no cover - defensive
            failure = ServiceError(f"control op failed: {exc!r}")
            return codec.encode({"ok": False, "error": wire.encode_error(failure)})
        return codec.encode({"ok": True, "value": value})


def _op_hello(gateway: ServiceGateway, args: dict) -> dict:
    key = gateway.license_key
    return {
        "name": gateway.name,
        "license_key": {"n": key.n, "e": key.e},
        "workers": gateway.workers,
        "shards": gateway.shards,
        "bank_account": gateway.bank_account,
        # Largest-first, matching gateway.denominations; the client
        # rebuilds its coin-verification keyring from this one reply.
        "bank_keys": [
            [denom, {"n": pub.n, "e": pub.e}]
            for denom in gateway.denominations
            for pub in (gateway.public_key(denom),)
        ],
    }


def _op_catalog(gateway: ServiceGateway, args: dict) -> list:
    return [_catalog_entry_dict(entry) for entry in gateway.catalog()]


def _op_price(gateway: ServiceGateway, args: dict) -> int:
    return gateway.price(str(args["content_id"]))


def _op_package(gateway: ServiceGateway, args: dict) -> bytes:
    return gateway.package(str(args["content_id"]))


def _op_revocation_sync(gateway: ServiceGateway, args: dict) -> dict:
    # "cursor" is the resume token (int watermark or per-shard version
    # list); older clients send "since_version", which degrades to a
    # full resync on the sharded LRL.
    if "cursor" in args:
        cursor = args["cursor"]
        if not isinstance(cursor, int):
            cursor = tuple(int(version) for version in cursor)
    else:
        cursor = int(args.get("since_version", 0))
    entries, snapshot, new_cursor = gateway.revocation_sync(cursor)
    return {
        "entries": [_revocation_entry_dict(entry) for entry in entries],
        "snapshot": snapshot.as_dict(),
        "cursor": list(new_cursor),
    }


def _op_prove_not_revoked(gateway: ServiceGateway, args: dict) -> dict:
    snapshot, proof = gateway.prove_not_revoked(bytes(args["license_id"]))
    return {
        "snapshot": snapshot.as_dict(),
        "proof": _non_inclusion_dict(proof),
    }


def _op_bank_balance(gateway: ServiceGateway, args: dict) -> int:
    return gateway.balance(str(args["account"]))


def _op_bank_statement(gateway: ServiceGateway, args: dict) -> list:
    limit = args.get("limit")
    entries = gateway.statement(
        str(args["account"]), limit=None if limit is None else int(limit)
    )
    return [entry.as_dict() for entry in entries]


def _op_traces(gateway: ServiceGateway, args: dict) -> list:
    """Kept traces from this process's tail-based recorder (empty when
    tracing is off — the op itself is always available)."""
    return tracing.kept_traces()


def _op_metrics(gateway: ServiceGateway, args: dict) -> dict:
    gateway.refresh_ledger_metrics()
    return gateway.metrics.snapshot()


def _op_metrics_text(gateway: ServiceGateway, args: dict) -> str:
    gateway.refresh_ledger_metrics()
    return gateway.metrics.render_text()


_CONTROL_OPS = {
    "hello": _op_hello,
    "catalog": _op_catalog,
    "price": _op_price,
    "package": _op_package,
    "revocation_sync": _op_revocation_sync,
    "prove_not_revoked": _op_prove_not_revoked,
    "bank_balance": _op_bank_balance,
    "bank_statement": _op_bank_statement,
    "metrics": _op_metrics,
    "metrics_text": _op_metrics_text,
    "traces": _op_traces,
}


# -- the client --------------------------------------------------------------


class NetClient(ProviderSurface, BankSurface):
    """Blocking client presenting the provider and bank surfaces over
    one socket.

    Pipelining: :meth:`submit` only writes; :meth:`gather` reads until
    its tickets are answered, parking any responses that belong to
    other outstanding tickets.  Responses correlate by request id, so
    order on the wire never matters.  One instance serves one thread
    (concurrent benchmark clients each open their own connection —
    exactly what a real client would do).
    """

    def __init__(
        self,
        address: tuple[str, int],
        *,
        timeout: float = 300.0,
        max_payload: int = MAX_FRAME_PAYLOAD,
    ):
        self._address = (str(address[0]), int(address[1]))
        self._timeout = timeout
        self._max_payload = max_payload
        self._next_id = itertools.count()
        #: Frames received but not yet claimed, by request id.
        self._received: dict[int, tuple[int, bytes]] = {}
        self._lock = threading.RLock()
        self._hello: dict | None = None
        self._closed = False
        #: Sticky connection failure.  Once the stream breaks, every
        #: outstanding correlation must resolve to the same typed
        #: error instead of hanging on a dead socket — and new work
        #: must be refused until (a subclass) re-dials.
        self._broken: ServiceError | None = None
        self._connect()

    def _connect(self) -> None:
        """Dial (or re-dial) the server: fresh socket, fresh decoder.

        Parked frames in ``self._received`` survive on purpose — a
        fully received response is a valid answer no matter what
        happened to the connection afterwards."""
        self._socket = socket_module.create_connection(
            self._address, timeout=self._timeout
        )
        self._socket.setsockopt(
            socket_module.IPPROTO_TCP, socket_module.TCP_NODELAY, 1
        )
        self._decoder = FrameDecoder(max_payload=self._max_payload)
        self._broken = None

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._socket.shutdown(socket_module.SHUT_RDWR)
        except OSError:
            pass
        self._socket.close()

    def __enter__(self) -> "NetClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- framing I/O -------------------------------------------------------

    def _send(self, frame_type: int, request_id: int, payload: bytes) -> None:
        if self._closed:
            raise ServiceError("client is closed")
        if self._broken is not None:
            raise self._broken
        data = encode_frame(
            frame_type, request_id, payload, max_payload=self._max_payload
        )
        try:
            self._socket.sendall(data)
        except OSError as exc:
            self._broken = ServiceError(f"send failed: {exc}")
            raise self._broken from exc
        # Opportunistically drain replies the server already produced.
        # A submit-all-then-gather batch would otherwise leave early
        # responses unread while still writing: once they overflow the
        # kernel buffers, the server's drain() blocks holding that
        # connection's in-flight slots, its read loop pauses, and both
        # sides stall until a timeout — a distributed deadlock.
        # Consuming eagerly keeps the reply stream flowing no matter
        # how deep the pipeline gets.
        self._drain_ready_frames()

    def _drain_ready_frames(self) -> None:
        """Park whatever complete frames are already readable, without
        blocking (the socket is briefly switched to non-blocking)."""
        self._socket.setblocking(False)
        try:
            while True:
                try:
                    data = self._socket.recv(_READ_CHUNK)
                except (BlockingIOError, InterruptedError):
                    break
                except OSError as exc:
                    # Same typed contract as the blocking reads: a
                    # reset mid-drain surfaces as ServiceError, not a
                    # bare socket exception out of submit().
                    self._broken = ServiceError(f"receive failed: {exc}")
                    raise self._broken from exc
                if not data:
                    # Server hung up; the next blocking read reports it
                    # with the proper typed error.
                    break
                for frame in self._decoder.feed(data):
                    self._received[frame.request_id] = (frame.type, frame.payload)
        finally:
            self._socket.settimeout(self._timeout)

    def _receive_into_parked(self) -> None:
        """Read one chunk off the socket; park every completed frame.

        Connection failures are **sticky**: the first one poisons the
        client (``self._broken``), and every later wait for a frame
        that never arrived re-raises the *same* typed error — so a
        mid-gather disconnect resolves all outstanding correlations
        instead of hanging the next one on a dead socket.
        """
        if self._broken is not None:
            raise self._broken
        try:
            data = self._socket.recv(_READ_CHUNK)
        except socket_module.timeout:
            # A timeout is not a broken stream: the decoder is still
            # frame-aligned and a slow server may yet answer.
            raise ServiceError(
                f"no server response within {self._timeout}s"
            ) from None
        except OSError as exc:
            self._broken = ServiceError(f"receive failed: {exc}")
            raise self._broken from exc
        if not data:
            # Typed truncation beats a silent hang: mid-frame close is
            # TruncatedFrameError, between-frames close a ServiceError.
            try:
                self._decoder.finish()
            except TruncatedFrameError as exc:
                self._broken = exc
                raise
            self._broken = ServiceError("server closed the connection")
            raise self._broken
        for frame in self._decoder.feed(data):
            self._received[frame.request_id] = (frame.type, frame.payload)

    def _await_frame(self, request_id: int, expected_type: int) -> bytes:
        with self._lock:
            while request_id not in self._received:
                self._receive_into_parked()
            frame_type, payload = self._received.pop(request_id)
        if frame_type != expected_type:
            raise WireError(
                f"server answered frame type 0x{frame_type:02x} where"
                f" 0x{expected_type:02x} was expected"
            )
        return payload

    # -- the transport -----------------------------------------------------

    def submit(self, request, *, worker: int | None = None) -> int:
        """Frame and send one request; returns the correlation ticket.

        ``worker`` pins the request past shard affinity (the socket
        twin of the gateway override tests use to stage races)."""
        envelope = wire.encode_request(request, trace=tracing.current_context())
        return self.submit_encoded(envelope, worker=worker)

    def submit_encoded(self, envelope: bytes, *, worker: int | None = None) -> int:
        """Frame and send already-encoded request bytes, verbatim.

        The reconnecting client retries through here: replaying the
        *same* envelope bytes keeps retries byte-identical (same
        idempotency nonce, same trace ids) across re-dials."""
        with self._lock:
            ticket = next(self._next_id)
            if worker is None:
                self._send(FRAME_REQUEST, ticket, envelope)
            else:
                self._send(
                    FRAME_REQUEST_PINNED, ticket, encode_pinned(worker, envelope)
                )
        return ticket

    def gather(self, tickets: list[int]) -> list:
        """Decoded results (or rejecting exceptions) for ``tickets``."""
        return [
            wire.decode_response(self._await_frame(ticket, FRAME_RESPONSE))
            for ticket in tickets
        ]

    # -- the control channel -----------------------------------------------

    def _control(self, op: str, **args):
        from .. import codec

        with self._lock:
            ticket = next(self._next_id)
            self._send(
                FRAME_CONTROL, ticket, codec.encode({"op": op, "args": args})
            )
        reply = codec.decode(self._await_frame(ticket, FRAME_CONTROL_REPLY))
        # Untrusted shape, typed rejection: a version-skewed or hostile
        # server must never leak a raw KeyError out of price()/hello.
        if not isinstance(reply, dict) or not isinstance(reply.get("ok"), bool):
            raise WireError("malformed control reply")
        if not reply["ok"]:
            if not isinstance(reply.get("error"), dict):
                raise WireError("malformed control error reply")
            raise wire.decode_error(reply["error"])
        if "value" not in reply:
            raise WireError("malformed control reply: no value")
        return reply["value"]

    def _hello_info(self) -> dict:
        if self._hello is None:
            self._hello = self._control("hello")
        return self._hello

    # -- the provider read surface -----------------------------------------

    @property
    def name(self) -> str:
        return str(self._hello_info()["name"])

    @property
    def license_key(self):
        from ..crypto.rsa import RsaPublicKey

        key = self._hello_info()["license_key"]
        return RsaPublicKey(n=int(key["n"]), e=int(key["e"]))

    @property
    def workers(self) -> int:
        return int(self._hello_info()["workers"])

    @property
    def shards(self) -> int:
        return int(self._hello_info()["shards"])

    def catalog(self) -> list[CatalogEntry]:
        return [_catalog_entry_from(entry) for entry in self._control("catalog")]

    def price(self, content_id: str) -> int:
        return int(self._control("price", content_id=content_id))

    def package(self, content_id: str) -> bytes:
        return bytes(self._control("package", content_id=content_id))

    def download(self, content_id: str) -> ContentPackage:
        return ContentPackage.from_bytes(self.package(content_id))

    def revocation_sync(self, cursor=0):
        """Delta entries, signed snapshot, advanced cursor — the same
        3-tuple surface as the gateway; ``cursor`` is opaque (int
        watermark or the per-shard tuple a previous call returned)."""
        if isinstance(cursor, int):
            body = self._control("revocation_sync", cursor=cursor)
        else:
            body = self._control(
                "revocation_sync", cursor=[int(v) for v in cursor]
            )
        entries = [_revocation_entry_from(entry) for entry in body["entries"]]
        new_cursor = tuple(int(version) for version in body["cursor"])
        return entries, SignedSnapshot.from_dict(body["snapshot"]), new_cursor

    def prove_not_revoked(self, license_id: bytes):
        body = self._control("prove_not_revoked", license_id=license_id)
        return (
            SignedSnapshot.from_dict(body["snapshot"]),
            _non_inclusion_from(body["proof"]),
        )

    # -- the bank read surface ---------------------------------------------

    @property
    def bank_account(self) -> str:
        """The provider's ledger account, from the hello reply."""
        return str(self._hello_info()["bank_account"])

    @property
    def denominations(self) -> list[int]:
        return [int(denom) for denom, _key in self._hello_info()["bank_keys"]]

    def public_key(self, denomination: int):
        from ..crypto.rsa import RsaPublicKey

        for denom, key in self._hello_info()["bank_keys"]:
            if int(denom) == denomination:
                return RsaPublicKey(n=int(key["n"]), e=int(key["e"]))
        raise PaymentError(f"unsupported denomination {denomination}")

    def decompose(self, amount: int) -> list[int]:
        return decompose_amount(amount, self.denominations)

    def verify_coin(self, coin: Coin) -> None:
        """Signature-only check against the hello keyring (raises
        :class:`~repro.errors.InvalidSignature` on mismatch)."""
        verify_blind_signature(
            coin.payload(), coin.signature, self.public_key(coin.value)
        )

    def balance(self, account: str) -> int:
        return int(self._control("bank_balance", account=account))

    def statement(
        self, account: str, *, limit: int | None = None
    ) -> list[LedgerEntry]:
        entries = self._control("bank_statement", account=account, limit=limit)
        return [LedgerEntry.from_dict(entry) for entry in entries]

    def metrics(self) -> dict:
        """The server's metrics snapshot (codec form: numeric values as
        ``repr`` strings — see :meth:`~repro.service.metrics.
        MetricsRegistry.snapshot`)."""
        return self._control("metrics")

    def metrics_text(self) -> str:
        """The server's Prometheus text exposition, over the control
        channel (same bytes the HTTP scrape endpoint serves)."""
        return str(self._control("metrics_text"))

    def traces(self) -> list:
        """Kept traces from the server's tail-based recorder (hex ids,
        integer-microsecond timings; empty when tracing is off)."""
        return list(self._control("traces"))
