"""Worker processes: the provider's desks, replicated and shard-backed.

Each worker is a full provider desk — the *same*
:class:`~repro.core.actors.provider.ContentProvider` and batch
pipelines as the in-process deployment — wired to:

- the shared per-shard store files (:mod:`repro.service.sharding`),
  so state and the exactly-once gates are common to the whole pool;
- a :class:`ShardedDepositDesk` standing in for the bank's deposit
  side (signature verification needs only the bank's public keys);
- deterministic issuance, so which worker handles a request never
  changes the bytes that come back;
- its own warm fastexp tables, built at startup after a
  :func:`repro.crypto.fastexp.reset` — a worker must not inherit
  whatever exponentiation mode or table registry the parent process
  (a benchmark arm, say) happened to leave behind.

Requests arrive on the worker's queue as ``(request_id, bytes)``
pairs and are coalesced into batches (up to ``max_batch`` items,
waiting at most ``max_wait`` seconds for stragglers) so the aggregate
verification paths have something to amortize over even when the
gateway submits one request at a time.

Where this sits in the stack: ``docs/architecture.md`` (service
layer — the desks the pool's routing and admission control feed).
"""

from __future__ import annotations

import hashlib
import queue as queue_module
import time
from contextlib import nullcontext
from dataclasses import dataclass, field, replace

from ..clock import SimClock
from ..core.actors.bank import decompose_amount
from ..core.actors.provider import ContentProvider, ProviderStores
from ..core.messages import (
    Coin,
    DepositRequest,
    ExchangeRequest,
    PurchaseRequest,
    RedeemRequest,
    WithdrawRequest,
)
from ..crypto import backend as crypto_backend
from ..crypto import fastexp
from ..crypto.blind_rsa import BlindSigner, batch_verify_blind_signatures
from ..crypto.groups import named_group
from ..crypto.rand import DeterministicRandomSource, default_source
from ..crypto.rsa import RsaPrivateKey, RsaPublicKey
from ..errors import DoubleSpendError, ParameterError, PaymentError, ServiceError
from ..storage.contents import ContentStore
from ..storage.engine import Database
from ..storage.ledger import LedgerEntry
from . import tracing, wire
from .ledger import DepositSequencer, ShardedLedger
from .replay import ReplayCache, ReplayConflictError
from .sharding import (
    ShardedAuditLog,
    ShardedLicenseStore,
    ShardedRevocationList,
    ShardedSpentTokenStore,
    ShardSet,
)

#: Default batch hand-off knobs: big enough for the aggregate checks to
#: pay, short enough that a lone request is not held hostage.
DEFAULT_MAX_BATCH = 32
DEFAULT_MAX_WAIT = 0.02


@dataclass(frozen=True)
class CatalogItem:
    """One published content item, as shipped to every worker."""

    content_id: str
    title: str
    price_cents: int
    added_at: int
    package: bytes
    content_key: bytes
    rights_template: str


@dataclass(frozen=True)
class ServiceConfig:
    """Everything a worker needs to become the provider.

    Pure data (ints, bytes, frozen dataclasses), so it crosses the
    process boundary under any multiprocessing start method.
    """

    shard_paths: tuple[str, ...]
    rng_seed: bytes
    clock_start: int
    group_name: str
    issuer_key: RsaPublicKey
    license_key: RsaPrivateKey
    bank_keys: dict[int, RsaPublicKey]
    catalog: tuple[CatalogItem, ...]
    #: Per-denomination private keys for the withdrawal desks (None
    #: builds a deposit-only pool — verification needs only the public
    #: keys above, and not every deployment wants its mint in every
    #: worker process).
    bank_signing_keys: dict[int, RsaPrivateKey] | None = None
    provider_name: str = "content-provider"
    bank_account: str = "content-provider-account"
    escrow_key_element: int | None = None
    max_batch: int = DEFAULT_MAX_BATCH
    max_wait: float = DEFAULT_MAX_WAIT
    #: Worker-side tracing switch: when true each worker installs a
    #: :class:`~repro.service.tracing.SpanCollector` and ships spans
    #: back on the response queue (the gateway's recorder makes the
    #: keep decision; workers never decide retention).
    tracing: bool = False
    #: Arithmetic backend every worker pins before warming its tables
    #: (captured from the parent's active backend at config-build
    #: time), so a pool's throughput numbers are attributable to one
    #: backend regardless of what each child process would have
    #: defaulted to.
    backend_name: str = field(default_factory=crypto_backend.backend_name)
    #: Name of the gateway's shared-memory segment holding the
    #: serialized fastexp tables (``None`` = no segment; workers build
    #: their own).  See :func:`warm_fastexp` for the build/attach/cow
    #: decision.
    fastexp_shm: str | None = None
    #: Marker stamped on the fastexp module by whoever built the warm
    #: tables for *this* config.  A forked worker that finds the same
    #: token in its (copy-on-write-inherited) fastexp globals knows the
    #: registry it holds is the gateway's and skips warmup entirely.
    warm_token: str | None = None
    #: Size of the per-worker screening thread pool (0 = serial).  The
    #: per-item arms of the batch screening stages (re-verifying
    #: members after an aggregate check fails) fan out across these
    #: threads; it pays only under the gmpy2 backend, whose ``powmod``
    #: releases the GIL, but is byte-identical to the serial path under
    #: any backend (see docs/fastexp.md).
    screening_threads: int = 0

    @classmethod
    def from_deployment(
        cls,
        deployment,
        shard_paths,
        *,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_wait: float = DEFAULT_MAX_WAIT,
        tracing: bool = False,
    ) -> "ServiceConfig":
        """Capture a built deployment's provider as a worker config.

        The deployment stays usable; the service layer takes over the
        provider *role* — same keys, same catalog, fresh sharded state.
        """
        provider = deployment.provider
        rng = provider._rng
        seed = getattr(rng, "seed", None)
        if seed is None:
            # Non-deterministic parent: issuance stays deterministic
            # *across workers* by deriving every worker's rng from one
            # fresh shared seed.
            seed = default_source().random_bytes(32)
        catalog = []
        contents = provider._contents
        for entry in provider.catalog():
            catalog.append(
                CatalogItem(
                    content_id=entry.content_id,
                    title=entry.title,
                    price_cents=entry.price_cents,
                    added_at=entry.added_at,
                    package=contents.package(entry.content_id),
                    content_key=contents.content_key(entry.content_id),
                    rights_template=contents.rights_template(entry.content_id),
                )
            )
        return cls(
            shard_paths=tuple(shard_paths),
            rng_seed=bytes(seed),
            clock_start=deployment.clock.now(),
            group_name=deployment.group.name,
            issuer_key=deployment.issuer.certificate_key,
            license_key=provider._license_key,
            bank_keys=dict(deployment.bank.public_keys()),
            bank_signing_keys=(
                dict(deployment.bank.signing_keys())
                if hasattr(deployment.bank, "signing_keys")
                else None
            ),
            catalog=tuple(catalog),
            provider_name=provider.name,
            bank_account=provider._bank_account,
            escrow_key_element=deployment.issuer.escrow_key.y,
            max_batch=max_batch,
            max_wait=max_wait,
            tracing=tracing,
        )


class ShardedDepositDesk:
    """The bank's account-facing side, runnable in any worker.

    Deposits verify with the per-denomination *public* keys and commit
    through the :class:`~repro.service.ledger.DepositSequencer`: a
    durable intent record on the account's home shard, coin spends on
    their home shards under the intent id, then one commit transaction
    that credits the balance — so a multi-coin payment lands atomically
    across shard files and a worker crash mid-deposit is recovered (not
    reconciled by hand) at the next pool start.  Withdrawals debit the
    same sharded ledger and blind-sign with the provisioned private
    keys.  Every balance read is the pool-wide durable figure from
    :meth:`balance` — the per-worker ``credited()`` tally this desk
    used to keep (and its deprecated alias) is gone.
    """

    def __init__(
        self,
        *,
        public_keys: dict[int, RsaPublicKey],
        spent: ShardedSpentTokenStore,
        ledger: ShardedLedger,
        clock,
        signing_keys: dict[int, RsaPrivateKey] | None = None,
        name: str = "deposit-desk",
        replay: ReplayCache | None = None,
    ):
        self.name = name
        self._keys = dict(public_keys)
        self._spent = spent
        self._ledger = ledger
        self._clock = clock
        self._replay = replay
        self._signers = (
            None
            if signing_keys is None
            else {d: BlindSigner(key) for d, key in signing_keys.items()}
        )
        self._sequencer = DepositSequencer(
            ledger=ledger, spent=spent, clock=clock
        )

    @property
    def replay(self) -> ReplayCache | None:
        return self._replay

    # -- accounts (the BankSurface read half) ------------------------------

    def open_account(self, account_id: str, *, initial_balance: int = 0) -> None:
        """Idempotent: accounts also auto-open on first deposit, so a
        duplicate-open error would be meaningless here.  A nonzero
        ``initial_balance`` needs a real opening (duplicate-checked),
        same as the in-process bank."""
        if initial_balance:
            self._ledger.open_account(
                account_id, at=self._clock.now(), initial_balance=initial_balance
            )
        else:
            self._ledger.ensure_account(account_id, at=self._clock.now())

    def balance(self, account_id: str) -> int:
        """The pool-wide durable balance from the sharded ledger —
        every worker (and the gateway) reads the same figure."""
        return self._ledger.balance(account_id)

    def statement(self, account_id: str, *, limit: int | None = None) -> list[LedgerEntry]:
        """The account's journal (deposits with transcripts, withdrawals,
        opens), oldest first."""
        return self._ledger.statement(account_id, limit=limit)

    # -- withdrawal (blind) ------------------------------------------------

    @property
    def denominations(self) -> tuple[int, ...]:
        """Supported coin values, largest first (same contract as the
        in-process bank — ``withdraw_coins`` greedy-splits on these)."""
        return tuple(sorted(self._keys, reverse=True))

    def decompose(self, amount: int) -> list[int]:
        """Greedy denomination split of ``amount`` (raises if impossible)."""
        return decompose_amount(amount, self.denominations)

    def withdraw_blind(self, account_id: str, denomination: int, blinded: int) -> int:
        """Debit the account on its home shard and blind-sign one coin
        request — the service twin of ``Bank.withdraw_blind``, with the
        debit durable and funds-checked under the shard's write lock."""
        if self._signers is None:
            raise ServiceError(
                "pool has no withdrawal keys (deposit-only deployment)"
            )
        if not self._ledger.has_account(account_id):
            raise PaymentError(f"no account {account_id!r}")
        signer = self._signers.get(denomination)
        if signer is None:
            raise PaymentError(f"unsupported denomination {denomination}")
        if not 0 <= blinded < signer.public_key.n:
            raise ParameterError("blinded value out of range")
        self._ledger.debit(account_id, denomination, at=self._clock.now())
        return signer.sign_blinded(blinded)

    # -- deposit -----------------------------------------------------------

    def public_key(self, denomination: int) -> RsaPublicKey:
        key = self._keys.get(denomination)
        if key is None:
            raise PaymentError(f"unsupported denomination {denomination}")
        return key

    def verify_coin(self, coin: Coin) -> None:
        """Signature-only check (no spend state change)."""
        from ..crypto.blind_rsa import verify_blind_signature

        verify_blind_signature(
            coin.payload(), coin.signature, self.public_key(coin.value)
        )

    def verify_coins(self, coins: list[Coin]) -> None:
        by_denomination: dict[int, list[Coin]] = {}
        for coin in coins:
            by_denomination.setdefault(coin.value, []).append(coin)
        for denomination, batch in by_denomination.items():
            key = self.public_key(denomination)
            batch_verify_blind_signatures(
                [(coin.payload(), coin.signature) for coin in batch], key
            )

    def deposit_batch(self, account_id: str, coins: list[Coin]) -> int:
        """Verify and credit one payment's coins, exactly once each.

        Returns the amount credited.  Raises
        :class:`~repro.errors.DoubleSpendError` when any serial is
        genuinely owned by a committed deposit — with this payment's
        own spends released and its intent aborted, so a refused
        deposit costs the payer nothing.  A coin transiently held by
        another payment's *pending* intent is waited out, not refused;
        an owner stuck past the wait budget surfaces as a retryable
        :class:`~repro.errors.ServiceError`, never a misuse verdict
        (see :class:`~repro.service.ledger.DepositSequencer`).
        """
        coins = list(coins)
        # Unknown accounts are opened on first deposit: a merchant
        # account service-side is a ledger row, and requiring an
        # out-of-band opening would make the deposit wire kind
        # unusable for anyone but the provider.
        self.verify_coins(coins)
        return self._sequencer.deposit(account_id, coins)

    def deposit_idempotent(
        self, account_id: str, coins: list[Coin], nonce: bytes
    ) -> bytes:
        """Deposit keyed on an idempotency nonce; returns response bytes.

        The replay path deals in *encoded* responses so a served retry
        is byte-identical to the original receipt.  Three outcomes:

        - the nonce has a valid completed record → the cached bytes,
          no re-execution;
        - fresh request → executes, with the response recorded at the
          sequencer's ``pre_commit`` seam (durable strictly before the
          credit), then the same bytes returned;
        - the execution hits :class:`~repro.errors.DoubleSpendError`
          or a nonce conflict → one re-lookup, because the losing race
          arm's *twin may be the original*: if a record validates now,
          the refusal was a retry artifact and the original receipt is
          the truthful answer.  Only when the re-lookup misses is the
          refusal genuine and re-raised.
        """
        if self._replay is None:
            raise ServiceError("this desk has no replay cache configured")
        coins = list(coins)
        cached = self._replay.lookup(nonce)
        if cached is not None:
            return cached
        self.verify_coins(coins)
        amount = sum(coin.value for coin in coins)
        response = wire.encode_response({"account": account_id, "credited": amount})

        def _record(intent_id: bytes) -> None:
            self._replay.record(
                nonce,
                response=response,
                intent_id=intent_id,
                account=account_id,
                amount=amount,
                at=self._clock.now(),
            )

        try:
            self._sequencer.deposit(account_id, coins, pre_commit=_record)
            return response
        except (DoubleSpendError, ReplayConflictError):
            cached = self._replay.lookup(nonce)
            if cached is not None:
                return cached
            raise

    def record_completed(self, nonce: bytes, response: bytes) -> bytes:
        """Bind ``nonce`` to a completed non-2PC operation's response.

        Returns the bytes to answer with: normally ``response``, but a
        lost record race (a duplicate delivery's twin recorded first)
        yields the twin's bytes — both executions answered identically
        beats two answers diverging.
        """
        if self._replay is None:
            return response
        try:
            self._replay.record(
                nonce,
                response=response,
                intent_id=b"",
                account="",
                amount=0,
                at=self._clock.now(),
            )
            return response
        except ReplayConflictError:
            cached = self._replay.lookup(nonce)
            return cached if cached is not None else response


def build_worker_provider(
    config: ServiceConfig, worker_index: int, shards: ShardSet
) -> tuple[ContentProvider, ShardedDepositDesk, SimClock]:
    """A full provider desk over the shared shards, for one worker."""
    clock = SimClock(config.clock_start)
    ledger = ShardedLedger(shards)
    desk = ShardedDepositDesk(
        public_keys=config.bank_keys,
        spent=ShardedSpentTokenStore(shards, "ecash"),
        ledger=ledger,
        clock=clock,
        signing_keys=config.bank_signing_keys,
        replay=ReplayCache(shards, ledger),
    )
    stores = ProviderStores(
        contents=_catalog_store(config),
        licenses=ShardedLicenseStore(shards),
        revocations=ShardedRevocationList(shards),
        spent_tokens=ShardedSpentTokenStore(shards, "anon-license"),
        request_nonces=ShardedSpentTokenStore(shards, "request-nonce"),
        audit=ShardedAuditLog(shards, preferred_shard=worker_index),
    )
    provider = ContentProvider(
        rng=DeterministicRandomSource(config.rng_seed),
        clock=clock,
        issuer_certificate_key=config.issuer_key,
        bank=desk,
        stores=stores,
        license_key=config.license_key,
        name=config.provider_name,
        bank_account=config.bank_account,
        deterministic_issuance=True,
    )
    return provider, desk, clock


def _catalog_store(config: ServiceConfig) -> ContentStore:
    """The static catalog, rebuilt in worker-local memory.

    Published content never changes under the pool (publishing happens
    before the gateway starts), so every worker keeps a private copy —
    reads of packages and content keys then never touch a shared file.
    ``check_same_thread=False``: the gateway's copy answers catalog
    reads from whichever thread serves them (the socket front-end's
    control channel in particular); the store is read-only once built
    and CPython's sqlite3 runs serialized, so cross-thread reads are
    safe.
    """
    store = ContentStore(Database(check_same_thread=False))
    for item in config.catalog:
        store.add(
            item.content_id,
            title=item.title,
            price_cents=item.price_cents,
            added_at=item.added_at,
            package=item.package,
            content_key=item.content_key,
            rights_template=item.rights_template,
        )
    return store


#: The shared-memory segment a worker attached its lazy tables to.
#: Module-level on purpose: the registry's :class:`~repro.crypto.
#: fastexp._SharedRows` views point into this mapping, so it must stay
#: alive as long as the tables are registered (released only by
#: :func:`_detach_shared_tables` on clean worker exit).
_SHARED_SEGMENT = None


def _attach_shared_tables(name: str) -> int:
    """Map the gateway's table segment and register its tables lazily.

    Returns the number of tables registered.  Ownership notes: the
    *gateway* owns the unlink.  Workers (fork or spawn) inherit the
    gateway's ``resource_tracker`` process, so the attach's implicit
    registration is a set-add of an already-registered name — it must
    NOT be unregistered here, or the gateway's own registration would
    vanish from the shared cache (unmatched-unregister noise at
    unlink time, and no leaked-segment cleanup if the whole tree
    crashes).  A worker dying — even by SIGKILL — cannot tear the
    name out from under its siblings either way: the shared tracker
    only reclaims names once *every* participant is gone.
    """
    global _SHARED_SEGMENT
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(name=name)
    count = fastexp.load_shared_tables(segment.buf)
    _SHARED_SEGMENT = segment
    return count


def _detach_shared_tables() -> None:
    """Drop the lazy tables and close this process's mapping.

    Clean-shutdown path only (``worker_main``'s ``finally``): the
    registry's ``_SharedRows`` views must die before the segment can
    close, otherwise ``SharedMemory.__del__`` spews ``BufferError:
    cannot close exported pointers exist`` at interpreter teardown.
    The name itself is untouched — unlinking is the gateway's job.
    """
    global _SHARED_SEGMENT
    segment = _SHARED_SEGMENT
    if segment is None:
        return
    _SHARED_SEGMENT = None
    fastexp.reset()  # releases every exported view into the mapping
    try:
        segment.close()
    except BufferError:  # a stray table survived reset(); leave it to
        pass             # the OS — unlink still reclaims the memory


def warm_fastexp(config: ServiceConfig) -> tuple[str, str]:
    """Per-worker arithmetic warm-up: build, attach, or inherit.

    Pins the config's arithmetic backend (so a spawn-started child
    doesn't silently run a different backend than the pool was
    configured for), then takes the cheapest route to warm tables:

    - ``"cow"`` — the fastexp module already carries ``config.
      warm_token``: this process was forked from the gateway after it
      built the tables, and copy-on-write inheritance means the
      registry is *already warm*.  Only the mode/enabled switches are
      normalized; zero exponentiations, zero copies.
    - ``"attach"`` — ``config.fastexp_shm`` names a shared-memory
      segment (the spawn path, or a fork that lost the token): map it
      and register lazily-materializing tables — O(map) now, rows
      decoded on first use.
    - ``"build"`` — no segment (direct :class:`WorkerPool` use, tests):
      reset and compute the tables from scratch, exactly as before.

    Returns ``(backend name, mode)`` — the warm-up record the E11/E18
    sweeps and the ``p2drm_worker_warmup_seconds{mode}`` metric
    attribute costs to.
    """
    if config.backend_name:
        crypto_backend.set_backend(config.backend_name)
    if (
        config.warm_token is not None
        and fastexp.warm_token() == config.warm_token
        and fastexp.table_count() > 0
    ):
        # Inherited the gateway's warm registry across fork.  Restore
        # the switches a worker expects without dropping the tables.
        fastexp.set_tables_enabled(True)
        fastexp.set_exp_mode(fastexp.default_exp_mode())
        return crypto_backend.backend_name(), "cow"
    fastexp.reset()
    if config.fastexp_shm is not None:
        try:
            count = _attach_shared_tables(config.fastexp_shm)
        except (OSError, ValueError, ParameterError):
            # Segment gone or malformed: fall through to a local build
            # — the shared tables are an optimization, never a
            # correctness dependency.
            count = 0
        if count:
            fastexp.set_warm_token(config.warm_token)
            return crypto_backend.backend_name(), "attach"
    group = named_group(config.group_name)
    group.precompute_generator()
    if config.escrow_key_element is not None:
        group.precompute_base(config.escrow_key_element)
    fastexp.set_warm_token(config.warm_token)
    return crypto_backend.backend_name(), "build"


def _warm_token_for(config: ServiceConfig) -> str:
    """Deterministic warm-token for a config's table *spec*.

    Two configs that would build the same tables (same group, same
    escrow element, same backend) share a token — all the COW check
    needs is "the registry this process carries was warmed for exactly
    this spec", not segment identity.
    """
    digest = hashlib.sha256()
    digest.update(config.group_name.encode())
    digest.update(str(config.escrow_key_element).encode())
    digest.update((config.backend_name or "").encode())
    return digest.hexdigest()


def publish_shared_tables(config: ServiceConfig):
    """Build the warm tables once, here, and publish them for workers.

    Runs the same build :func:`warm_fastexp` would run in every worker
    — but in the *gateway* process, exactly once — then serializes the
    registry into a fresh ``multiprocessing.shared_memory`` segment and
    stamps the warm token on this process's fastexp module.  Returns
    ``(config', segment)`` where ``config'`` carries the segment name
    and token, so:

    - forked workers find the token in their copy-on-write-inherited
      globals and skip warmup entirely (``mode="cow"``);
    - spawned workers attach the segment and materialize rows lazily
      (``mode="attach"``);
    - the caller owns ``segment`` and must ``close()`` + ``unlink()``
      it when the pool stops (workers deliberately never unlink — see
      :func:`_attach_shared_tables`).

    If the host cannot create shared memory the original config comes
    back with ``segment=None`` and every worker simply builds its own
    tables, the pre-shared behaviour.
    """
    if config.backend_name:
        crypto_backend.set_backend(config.backend_name)
    token = _warm_token_for(config)
    if fastexp.warm_token() != token or fastexp.table_count() == 0:
        fastexp.reset()
        group = named_group(config.group_name)
        group.precompute_generator()
        if config.escrow_key_element is not None:
            group.precompute_base(config.escrow_key_element)
        fastexp.set_warm_token(token)
    blob = fastexp.serialize_tables()
    try:
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(create=True, size=len(blob))
    except (ImportError, OSError):
        return config, None
    segment.buf[: len(blob)] = blob
    return replace(config, fastexp_shm=segment.name, warm_token=token), segment


@dataclass
class _Drained:
    """One coalesced queue batch plus whether shutdown was seen."""

    items: list = field(default_factory=list)
    shutdown: bool = False


def _drain_batch(request_queue, max_batch: int, max_wait: float) -> _Drained:
    drained = _Drained()
    try:
        first = request_queue.get()
    except (EOFError, OSError):
        drained.shutdown = True
        return drained
    if first is None:
        drained.shutdown = True
        return drained
    drained.items.append(first)
    deadline = time.monotonic() + max_wait
    while len(drained.items) < max_batch:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            break
        try:
            item = request_queue.get(timeout=remaining)
        except queue_module.Empty:
            break
        except (EOFError, OSError):
            drained.shutdown = True
            break
        if item is None:
            drained.shutdown = True
            break
        drained.items.append(item)
    return drained


def worker_main(worker_index, config, request_queue, response_queue):
    """Entry point of one worker process.

    Builds the desk, then loops: drain a batch from the queue, run the
    batch pipelines, push ``(request_id, response_bytes)`` results.  A
    ``None`` queue item shuts the worker down cleanly.

    The first thing on the response queue is a ticketless warmup
    announcement ``(None, ("warmup", index, mode, seconds))`` — the
    collector turns it into the ``p2drm_worker_warmup_seconds{mode}``
    histogram and the pool's ``warmup_reports``.
    """
    warm_start = time.monotonic()
    _backend_name, warm_mode = warm_fastexp(config)
    try:
        response_queue.put(
            (None, ("warmup", worker_index, warm_mode,
                    time.monotonic() - warm_start))
        )
    except (OSError, ValueError):
        pass  # pool torn down before we finished warming; exit via loop
    if config.tracing:
        tracing.install(tracing.SpanCollector())
    screen_pool = None
    shards = ShardSet(config.shard_paths)
    try:
        provider, desk, clock = build_worker_provider(config, worker_index, shards)
        if config.screening_threads > 0:
            from concurrent.futures import ThreadPoolExecutor

            screen_pool = ThreadPoolExecutor(
                max_workers=config.screening_threads,
                thread_name_prefix=f"p2drm-screen-{worker_index}",
            )
            provider.screening_executor = screen_pool
        while True:
            drained = _drain_batch(request_queue, config.max_batch, config.max_wait)
            if drained.items:
                try:
                    _process_batch(
                        provider, desk, clock, drained.items, response_queue,
                        worker_index=worker_index,
                    )
                except Exception as exc:
                    # The per-item pipelines catch their own failures;
                    # anything escaping here is a shared-stage error
                    # (a busy shard in an aggregate pass, say).  Fail
                    # the batch, keep the worker: one transient error
                    # must not permanently degrade the pool.  Items
                    # already answered just produce a duplicate
                    # response, which the gateway parks and bounds.
                    failure = ServiceError(f"worker batch failed: {exc!r}")
                    for request_id, *_ in drained.items:
                        response_queue.put(
                            (request_id, wire.encode_response(failure))
                        )
            if drained.shutdown:
                return
    finally:
        if screen_pool is not None:
            screen_pool.shutdown(wait=False)
        shards.close()
        _detach_shared_tables()


class _BatchTraces:
    """Per-batch trace bookkeeping inside a worker.

    For every traced request the batch holds a pre-allocated
    ``worker.request`` span id: spans recorded while the request is
    being processed (2PC phases, shard spends) parent under it via
    :func:`~repro.service.tracing.activate`, and the span itself is
    recorded when the response is enqueued.  Responses for traced
    requests cross the queue as ``(request_id, payload, spans)``
    3-tuples; untraced ones stay 2-tuples.
    """

    def __init__(self, items, worker_index: int, batch_start: float):
        self._collector = tracing.collector()
        self._worker = worker_index
        self._batch_start = batch_start
        self._states: dict[int, tuple[tracing.TraceContext, bytes]] = {}
        self._kinds: dict[int, str] = {}
        if self._collector is None:
            return
        for item in items:
            request_id, payload = item[0], item[1]
            ctx = wire.peek_trace(payload)
            if ctx is None:
                continue
            self._states[request_id] = (ctx, tracing.new_span_id())
            submit_mono = item[3] if len(item) > 3 else None
            if submit_mono is not None:
                tracing.record_span(
                    "pool.queue",
                    trace_id=ctx.trace_id,
                    parent_id=ctx.span_id,
                    start=submit_mono,
                    duration=batch_start - submit_mono,
                    attrs={"worker": worker_index},
                )

    @property
    def any_traced(self) -> bool:
        return bool(self._states)

    def note_kind(self, request_id: int, request) -> None:
        try:
            self._kinds[request_id] = wire.request_kind(request)
        except Exception:
            pass

    def scope(self, request_id: int):
        """Ambient context for one request's processing: children (2PC
        phase spans, shard spends) parent under its worker span."""
        state = self._states.get(request_id)
        if state is None:
            return nullcontext()
        ctx, span_id = state
        return tracing.activate(tracing.TraceContext(ctx.trace_id, span_id))

    def replicate_stages(self, stage_log, members) -> None:
        """Copy batch-wide stage timings onto each traced member: the
        aggregate pipeline ran once, but every member's trace should
        read as a complete story."""
        if not stage_log:
            return
        for request_id, _ in members:
            state = self._states.get(request_id)
            if state is None:
                continue
            ctx, span_id = state
            for op, stage, start, duration, n in stage_log:
                tracing.record_span(
                    "worker.stage",
                    trace_id=ctx.trace_id,
                    parent_id=span_id,
                    start=start,
                    duration=duration,
                    attrs={"op": op, "stage": stage, "n": n},
                )

    def respond(self, response_queue, request_id: int, payload: bytes) -> None:
        state = self._states.pop(request_id, None)
        if state is None:
            response_queue.put((request_id, payload))
            return
        ctx, span_id = state
        outcome, error_type = wire.peek_response_outcome(payload)
        tracing.record_span(
            "worker.request",
            trace_id=ctx.trace_id,
            parent_id=ctx.span_id,
            span_id=span_id,
            start=self._batch_start,
            duration=time.monotonic() - self._batch_start,
            status="error" if outcome == "error" else "ok",
            error=error_type or "",
            attrs={"op": self._kinds.get(request_id, "unknown"),
                   "worker": self._worker},
        )
        response_queue.put(
            (request_id, payload, self._collector.drain(ctx.trace_id))
        )


def _precheck_replay(desk, entries, payload_by_id, traces, response_queue):
    """Answer any entry whose idempotency nonce already resolved;
    returns the entries that still need execution.

    A lookup refusal (a deposit record mid-commit under the same
    nonce) answers that entry with the typed retryable error — the
    client re-asks rather than this batch guessing.
    """
    if desk.replay is None:
        return entries
    survivors = []
    for request_id, request in entries:
        nonce = wire.peek_nonce(payload_by_id[request_id])
        if nonce is None:
            survivors.append((request_id, request))
            continue
        try:
            cached = desk.replay.lookup(nonce)
        except ServiceError as exc:
            traces.respond(response_queue, request_id, wire.encode_response(exc))
            continue
        if cached is None:
            survivors.append((request_id, request))
        else:
            traces.respond(response_queue, request_id, cached)
    return survivors


def _respond_completed(
    desk, traces, response_queue, request_id, nonce, result
) -> None:
    """Encode and send one non-2PC result, with replay bookkeeping.

    Success with a nonce records the response (bare — completion *is*
    the evidence).  Failure with a nonce re-checks the cache first: a
    duplicate delivery's twin may have completed between our precheck
    and our execution, making this refusal a retry artifact — the
    twin's recorded response is then the truthful answer.  Errors are
    never cached: a transient refusal must not become sticky.
    """
    response = wire.encode_response(result)
    if nonce is not None and desk.replay is not None:
        if isinstance(result, BaseException):
            try:
                cached = desk.replay.lookup(nonce)
            except ServiceError:
                cached = None
            if cached is not None:
                response = cached
        else:
            response = desk.record_completed(nonce, response)
    traces.respond(response_queue, request_id, response)


def _process_batch(
    provider, desk, clock, items, response_queue, worker_index: int = 0
) -> None:
    """Decode, dispatch per kind through the batch pipelines, respond."""
    batch_start = time.monotonic()
    # The worker clock follows the *gateway's* stamps — time is
    # distributed from the operator side of the wire.  Request bodies
    # also carry timestamps, but those are client-controlled: trusting
    # them here (even validated ones) would let signed-but-bogus
    # stamps ratchet the clock and freshness-DoS honest traffic.
    latest_stamp = max(item[2] for item in items)
    if latest_stamp > clock.now():
        clock.set(latest_stamp)

    traces = _BatchTraces(items, worker_index, batch_start)

    decoded: list[tuple[int, object]] = []
    for item in items:
        request_id, payload = item[0], item[1]
        try:
            decoded.append((request_id, wire.decode_request(payload)))
        except Exception as exc:
            traces.respond(response_queue, request_id, wire.encode_response(exc))
    for request_id, request in decoded:
        traces.note_kind(request_id, request)

    sells = [(rid, r) for rid, r in decoded if isinstance(r, PurchaseRequest)]
    redeems = [(rid, r) for rid, r in decoded if isinstance(r, RedeemRequest)]
    exchanges = [(rid, r) for rid, r in decoded if isinstance(r, ExchangeRequest)]
    deposits = [(rid, r) for rid, r in decoded if isinstance(r, DepositRequest)]
    withdraws = [(rid, r) for rid, r in decoded if isinstance(r, WithdrawRequest)]

    payload_by_id = {item[0]: item[1] for item in items}
    # Idempotent replay for the non-2PC kinds: a nonce whose original
    # already completed answers from the cache *before* re-execution
    # (which would burn its one-shot request nonce and turn an honest
    # retry into a replay verdict).  Deposits run their own, stronger
    # intent-gated path below.
    sells = _precheck_replay(desk, sells, payload_by_id, traces, response_queue)
    redeems = _precheck_replay(desk, redeems, payload_by_id, traces, response_queue)
    exchanges = _precheck_replay(
        desk, exchanges, payload_by_id, traces, response_queue
    )
    withdraws = _precheck_replay(
        desk, withdraws, payload_by_id, traces, response_queue
    )

    if sells:
        with _stage_log(provider, traces.any_traced) as stage_log:
            results = provider.sell_batch([request for _, request in sells])
        traces.replicate_stages(stage_log, sells)
        for (request_id, _), result in zip(sells, results):
            _respond_completed(
                desk, traces, response_queue, request_id,
                wire.peek_nonce(payload_by_id[request_id]), result,
            )
    if redeems:
        with _stage_log(provider, traces.any_traced) as stage_log:
            results = provider.redeem_batch([request for _, request in redeems])
        traces.replicate_stages(stage_log, redeems)
        for (request_id, _), result in zip(redeems, results):
            _respond_completed(
                desk, traces, response_queue, request_id,
                wire.peek_nonce(payload_by_id[request_id]), result,
            )
    for request_id, request in exchanges:
        with traces.scope(request_id):
            try:
                result = provider.exchange(request)
            except Exception as exc:
                result = exc
        _respond_completed(
            desk, traces, response_queue, request_id,
            wire.peek_nonce(payload_by_id[request_id]), result,
        )
    for request_id, request in deposits:
        nonce = wire.peek_nonce(payload_by_id[request_id])
        with traces.scope(request_id):
            try:
                if nonce is not None and desk.replay is not None:
                    response = desk.deposit_idempotent(
                        request.account, list(request.coins), nonce
                    )
                else:
                    credited = desk.deposit_batch(
                        request.account, list(request.coins)
                    )
                    response = wire.encode_response(
                        {"account": request.account, "credited": credited}
                    )
            except Exception as exc:
                response = wire.encode_response(exc)
        traces.respond(response_queue, request_id, response)
    for request_id, request in withdraws:
        with traces.scope(request_id):
            try:
                signature = desk.withdraw_blind(
                    request.account, request.denomination, request.blinded
                )
                result = {
                    "account": request.account,
                    "denomination": request.denomination,
                    "signature": signature,
                }
            except Exception as exc:
                result = exc
        _respond_completed(
            desk, traces, response_queue, request_id,
            wire.peek_nonce(payload_by_id[request_id]), result,
        )


class _stage_log:
    """Context manager installing the provider's batch stage hook.

    Yields the list the hook appends ``(op, stage, start, duration, n)``
    timing records to; always uninstalls, so an exploding pipeline
    never leaves a stale hook on the shared provider.
    """

    def __init__(self, provider, enabled: bool):
        self._provider = provider
        self._log: list = []
        self._enabled = enabled

    def __enter__(self):
        if self._enabled:
            self._provider.stage_hook = self._log.append
        return self._log

    def __exit__(self, *exc_info):
        self._provider.stage_hook = None
        return False


def require_start_method() -> str:
    """The multiprocessing start method the pool uses on this host.

    ``P2DRM_START_METHOD`` (``fork`` / ``spawn`` / ``forkserver``)
    overrides the platform default — CI uses it to force the spawn
    path (and therefore the shared-memory table attach) on Linux,
    where fork would otherwise always win.
    """
    import multiprocessing
    import os
    import sys

    methods = multiprocessing.get_all_start_methods()
    forced = os.environ.get("P2DRM_START_METHOD")
    if forced:
        if forced not in methods:
            raise ServiceError(
                f"P2DRM_START_METHOD={forced!r} is not available on this"
                f" host (have {methods})"
            )
        return forced
    if sys.platform == "linux" and "fork" in methods:
        # Cheapest on Linux, and workers rebuild their own state anyway
        # (warm_fastexp resets whatever was inherited).  Elsewhere —
        # macOS in particular, where forked CPython children abort in
        # system frameworks — spawn is the safe choice, which is why
        # CPython itself switched those defaults.
        return "fork"
    if "spawn" in methods:
        return "spawn"
    raise ServiceError("no usable multiprocessing start method")
