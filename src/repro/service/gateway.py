"""The service gateway: the provider's front door over a worker pool.

The heavy lifting — processes, queues, shard-affine routing, ticket
bookkeeping, dead-worker detection — lives in the transport-agnostic
:class:`~repro.service.pool.WorkerPool`; the gateway is the
*in-process* :class:`~repro.service.transport.Transport` over it plus
the provider-surface facade and the operator's read views.  The
asyncio socket front-end (:mod:`repro.service.netserver`) shares the
same pool core, which is why the two paths cannot drift apart.

The public surface mirrors :class:`~repro.core.actors.provider.
ContentProvider` for everything the rest of the system uses — users,
devices and the marketplace simulator drive a gateway exactly like the
in-process actor.  Reads (audit log, licence register, revocation
sync) are served gateway-side from the same shard files the workers
write, through WAL snapshots.
"""

from __future__ import annotations

import time
from dataclasses import replace as _replace

from ..core.actors.bank import decompose_amount
from ..core.content import ContentPackage
from ..core.licenses import AnonymousLicense, PersonalLicense
from ..core.messages import (
    Coin,
    DepositRequest,
    ExchangeRequest,
    PurchaseRequest,
    RedeemRequest,
    WithdrawRequest,
)
from ..crypto.blind_rsa import verify_blind_signature
from ..errors import PaymentError, RevokedLicenseError, StoreIntegrityError
from ..storage.contents import CatalogEntry, ContentStore
from ..storage.ledger import LedgerEntry
from . import tracing as tracing_module
from .ledger import ShardedLedger, recover_intents
from .metrics import MetricsRegistry, ensure_service_metrics
from .replay import ReplayCache
from .pool import RESPONSE_TIMEOUT, WorkerPool
from .sharding import (
    ShardedAuditLog,
    ShardedLicenseStore,
    ShardedRevocationList,
    ShardedSpentTokenStore,
    ShardSet,
)
from .transport import Transport
from .workers import ServiceConfig, _catalog_store, publish_shared_tables

__all__ = [
    "ServiceGateway",
    "ServiceConfig",
    "ProviderSurface",
    "BankSurface",
    "build_gateway",
    "RESPONSE_TIMEOUT",
]


class ProviderSurface(Transport):
    """The protocol half of the provider facade, written once.

    Everything here reduces to :meth:`~repro.service.transport.
    Transport.submit` / :meth:`~repro.service.transport.Transport.
    gather`, so the in-process gateway and the network client present
    the same surface by inheritance, not by parallel maintenance.
    """

    def sell(self, request: PurchaseRequest) -> PersonalLicense:
        return self.call(request)

    def sell_batch(self, requests: list[PurchaseRequest]) -> list:
        return self.call_many(requests)

    def exchange(self, request: ExchangeRequest) -> AnonymousLicense:
        return self.call(request)

    def redeem(self, request: RedeemRequest) -> PersonalLicense:
        return self.call(request)

    def redeem_batch(self, requests: list[RedeemRequest]) -> list:
        return self.call_many(requests)

    def deposit(self, account: str, coins: list[Coin]) -> dict:
        return self.call(DepositRequest(account=account, coins=tuple(coins)))


class BankSurface(Transport):
    """The bank half of the facade: withdraw / deposit / balance /
    statement, written once against the transport seam.

    Parallels :class:`ProviderSurface`: the write operations reduce to
    :meth:`~repro.service.transport.Transport.submit` /
    :meth:`~repro.service.transport.Transport.gather` (so they run on
    the worker desks over either transport, with typed error
    envelopes), while the read half — :meth:`balance` and
    :meth:`statement` — is served by each concrete transport from the
    sharded ledger (the gateway reads the shard files directly; the
    socket client asks over control frames).  Together with the key
    surface (``denominations`` / ``public_key`` / ``decompose`` /
    ``verify_coin``) a gateway or socket client is a drop-in ``bank``
    argument for :func:`~repro.core.protocols.payment.withdraw_coins`.
    """

    def withdraw_blind(self, account: str, denomination: int, blinded: int) -> int:
        """Debit ``account`` and blind-sign one coin request on a
        worker desk; returns the blind signature value."""
        receipt = self.call(
            WithdrawRequest(
                account=account, denomination=denomination, blinded=blinded
            )
        )
        return int(receipt["signature"])

    def deposit(self, account: str, coins: list[Coin]) -> dict:
        return self.call(DepositRequest(account=account, coins=tuple(coins)))

    def balance(self, account: str) -> int:
        raise NotImplementedError

    def statement(self, account: str, *, limit: int | None = None) -> list[LedgerEntry]:
        raise NotImplementedError


class ServiceGateway(ProviderSurface, BankSurface):
    """Route requests to shard-affine desk workers, in-process."""

    def __init__(
        self,
        config: ServiceConfig,
        *,
        workers: int = 2,
        start_method: str | None = None,
        clock=None,
        max_inflight: int | None = None,
        max_pending: int | None = None,
        registry=None,
    ):
        # Warm the fastexp tables ONCE, here, and publish them: forked
        # workers inherit the registry copy-on-write, spawned workers
        # attach the shared-memory segment — either way the pool pays
        # for one table build, not one per worker.  The gateway owns
        # the segment and unlinks it in :meth:`close`.
        config, self._fastexp_segment = publish_shared_tables(config)
        # Open (and migrate) every shard *before* the pool starts: the
        # gateway's read views double as the schema bootstrap, so
        # workers never race each other on DDL.
        self._config = config
        self._shards = ShardSet(config.shard_paths)
        self._licenses = ShardedLicenseStore(self._shards)
        self._revocations = ShardedRevocationList(self._shards)
        self._audit = ShardedAuditLog(self._shards)
        self._spent_tokens = ShardedSpentTokenStore(self._shards, "anon-license")
        self._coin_spent_tokens = ShardedSpentTokenStore(self._shards, "ecash")
        self._ledger = ShardedLedger(self._shards)
        # Front-door view of the workers' idempotent-replay cache
        # (same shard files, so a retry the socket server answers here
        # never reaches a worker queue).  The wait budget is short:
        # the socket server consults this under its control lock, so a
        # mid-commit original must refuse-retryably fast, not camp on
        # the lock — the worker-side cache owns the patient wait.
        self._replay = ReplayCache(self._shards, self._ledger, wait_budget=0.25)
        self._contents: ContentStore = _catalog_store(config)
        self._closed = False
        self._registry = ensure_service_metrics(
            registry if registry is not None else MetricsRegistry()
        )
        self._m_ledger_latency = self._registry.get("p2drm_ledger_latency_seconds")
        self._m_ledger_2pc = self._registry.get("p2drm_ledger_2pc_total")
        self._m_ledger_intents = self._registry.get("p2drm_ledger_intents")
        #: Last durable 2PC counts folded into the counter (the refresh
        #: publishes deltas; intent rows are never deleted, so the scan
        #: counts are monotone).
        self._ledger_2pc_seen = {"prepare": 0, "commit": 0, "abort": 0}
        try:
            # Presumed-abort recovery BEFORE any worker starts: a
            # pending intent left by a crashed pool never reached its
            # commit point, so its coin spends are released and the
            # intent aborted — the payer's retry then goes through
            # cleanly and no coin stays spent without a credit.
            started = time.perf_counter()
            now = clock.now() if clock is not None else config.clock_start
            self._recovery = recover_intents(
                self._ledger, self._coin_spent_tokens, at=now
            )
            self._m_ledger_latency.observe(
                time.perf_counter() - started, op="recover"
            )
            # The provider's own account always exists (deposits only
            # *ensure* accounts, and an operator reading revenue before
            # the first sale deserves 0, not a typed refusal).
            self._ledger.ensure_account(config.bank_account, at=now)
            self.refresh_ledger_metrics()
            self._pool = WorkerPool(
                config,
                workers=workers,
                start_method=start_method,
                clock=clock,
                max_inflight=max_inflight,
                max_pending=max_pending,
                registry=self._registry,
            )
        except BaseException:
            self._shards.close()
            self._release_shared_tables()
            raise

    # -- lifecycle ---------------------------------------------------------

    @property
    def pool(self) -> WorkerPool:
        """The transport-agnostic core (shared with the socket server)."""
        return self._pool

    @property
    def workers(self) -> int:
        return self._pool.workers

    @property
    def metrics(self):
        """The pool's :class:`~repro.service.metrics.MetricsRegistry`
        (shared with whatever socket front-end wraps this gateway)."""
        return self._pool.metrics

    @property
    def shards(self) -> int:
        return len(self._shards)

    @property
    def _processes(self) -> list:
        """Worker process handles (tests kill these deliberately)."""
        return self._pool.processes

    @property
    def _abandoned(self) -> set:
        """The pool's abandoned-ticket book (asserted on in tests)."""
        return self._pool._abandoned

    def _release_shared_tables(self) -> None:
        """Unmap and unlink the published table segment (idempotent).

        Only the gateway unlinks: workers — including SIGKILL'd ones —
        unregister the name from their resource trackers at attach
        time, so the segment's lifetime is exactly the gateway's.
        """
        segment = self._fastexp_segment
        if segment is None:
            return
        self._fastexp_segment = None
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:
            pass

    def close(self) -> None:
        """Stop the pool and release the gateway's shard handles."""
        if self._closed:
            return
        self._closed = True
        self._pool.close()
        self._shards.close()
        self._release_shared_tables()

    def __enter__(self) -> "ServiceGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the transport -----------------------------------------------------

    def worker_for(self, request) -> int:
        """The shard-affine worker index for a request (exposed for
        tests that need to *defeat* affinity and race two workers)."""
        return self._pool.worker_for(request)

    def submit(
        self, request, *, worker: int | None = None, nonce: bytes | None = None
    ) -> int:
        """Enqueue one request; returns a ticket for :meth:`gather`.

        ``worker`` overrides shard affinity — how tests race the same
        token onto two different workers on purpose.  ``nonce``
        stamps an idempotency key for retry-safe resubmission (see
        :mod:`repro.service.replay`).
        """
        return self._pool.submit(request, worker=worker, nonce=nonce)

    def gather(self, request_ids: list[int]) -> list:
        """Results (or rejecting exceptions) for submitted tickets,
        aligned with ``request_ids``."""
        return self._pool.gather(request_ids)

    # -- the provider read surface -----------------------------------------

    @property
    def name(self) -> str:
        return self._config.provider_name

    @property
    def license_key(self):
        """Licence/LRL-snapshot verification key (devices pin this)."""
        return self._config.license_key.public_key

    @property
    def license_register(self) -> ShardedLicenseStore:
        return self._licenses

    @property
    def audit_log(self) -> ShardedAuditLog:
        return self._audit

    @property
    def revocation_list(self) -> ShardedRevocationList:
        return self._revocations

    @property
    def spent_tokens(self) -> ShardedSpentTokenStore:
        return self._spent_tokens

    @property
    def coin_spent_tokens(self) -> ShardedSpentTokenStore:
        return self._coin_spent_tokens

    def catalog(self) -> list[CatalogEntry]:
        return self._contents.catalog()

    def price(self, content_id: str) -> int:
        return self._contents.price(content_id)

    def package(self, content_id: str) -> bytes:
        """The sealed package bytes (what :meth:`download` parses —
        and what the socket server ships to remote clients)."""
        return self._contents.package(content_id)

    def download(self, content_id: str) -> ContentPackage:
        return ContentPackage.from_bytes(self.package(content_id))

    def revocation_sync(self, cursor=0):
        """Delta entries, signed snapshot and advanced cursor for sync.

        ``cursor`` is what the last sync returned — a per-shard version
        tuple (a legacy ``int`` watermark degrades to a full resync).
        The snapshot is bounded by the returned cursor (see
        :meth:`~repro.service.sharding.ShardedRevocationList.sync_since`)
        so a concurrent worker revocation cannot produce a snapshot
        whose root covers an entry the delta omits.
        """
        return self._revocations.sync_since(
            cursor, self._config.license_key
        )

    def prove_not_revoked(self, license_id: bytes):
        if self._revocations.is_revoked(license_id):
            raise RevokedLicenseError(
                f"licence {license_id.hex()[:16]} is revoked"
            )
        # Snapshot and proof must come from ONE scan: workers revoke
        # concurrently, and a proof against a newer tree than the
        # signed root would spuriously fail verification.
        snapshot, tree = self._revocations.snapshot_with_tree(
            self._config.license_key
        )
        try:
            proof = tree.prove_non_inclusion(license_id)
        except StoreIntegrityError:
            # A worker revoked it between the is_revoked check and the
            # scan — that is a plain revocation, not corrupted state.
            raise RevokedLicenseError(
                f"licence {license_id.hex()[:16]} is revoked"
            ) from None
        return snapshot, proof

    # -- the bank surface --------------------------------------------------

    @property
    def bank_account(self) -> str:
        """The provider's ledger account (deposits land here)."""
        return self._config.bank_account

    @property
    def denominations(self) -> list[int]:
        """Supported coin denominations, largest first."""
        return sorted(self._config.bank_keys, reverse=True)

    def public_key(self, denomination: int):
        try:
            return self._config.bank_keys[denomination]
        except KeyError:
            raise PaymentError(
                f"unsupported denomination {denomination}"
            ) from None

    def decompose(self, amount: int) -> list[int]:
        return decompose_amount(amount, self.denominations)

    def verify_coin(self, coin: Coin) -> None:
        """Signature-only check, same contract as the in-process bank
        (raises :class:`~repro.errors.InvalidSignature` on mismatch)."""
        verify_blind_signature(
            coin.payload(), coin.signature, self.public_key(coin.value)
        )

    @property
    def ledger(self) -> ShardedLedger:
        """The gateway-side read view over the sharded ledger files."""
        return self._ledger

    @property
    def replay(self) -> ReplayCache:
        """The idempotent-replay cache over the same shard files the
        workers write (the socket front door short-circuits retries
        whose original landed)."""
        return self._replay

    @property
    def recovery_summary(self) -> dict:
        """What presumed-abort startup recovery did: ``{"aborted": n,
        "released": k}`` (both zero on a clean start)."""
        return dict(self._recovery)

    def open_account(self, account_id: str, *, initial_balance: int = 0) -> None:
        """Open a ledger account on its home shard (operator path; the
        worker desks only *ensure* accounts on deposit)."""
        self._ledger.open_account(
            account_id,
            at=self._pool.clock.now(),
            initial_balance=initial_balance,
        )

    def balance(self, account: str) -> int:
        started = time.perf_counter()
        try:
            return self._ledger.balance(account)
        finally:
            self._m_ledger_latency.observe(
                time.perf_counter() - started, op="balance"
            )

    def statement(
        self, account: str, *, limit: int | None = None
    ) -> list[LedgerEntry]:
        started = time.perf_counter()
        try:
            return self._ledger.statement(account, limit=limit)
        finally:
            self._m_ledger_latency.observe(
                time.perf_counter() - started, op="statement"
            )

    def refresh_ledger_metrics(self) -> dict:
        """Fold the durable intent-row counts into the 2PC metrics.

        The sequencer runs inside worker processes whose registries the
        operator cannot see, so the pool-wide truth is read from the
        shard files instead: intent rows are immutable once terminal
        and never deleted, which makes the scanned counts monotone and
        the counter publishable by delta.  Returns the current state
        counts (what the gauge now shows).
        """
        started = time.perf_counter()
        counts = self._ledger.intent_counts()
        totals = {
            "prepare": sum(counts.values()),
            "commit": counts.get("committed", 0),
            "abort": counts.get("aborted", 0),
        }
        for phase, total in totals.items():
            delta = total - self._ledger_2pc_seen[phase]
            if delta > 0:
                self._m_ledger_2pc.inc(delta, phase=phase)
                self._ledger_2pc_seen[phase] = total
        for state in ("pending", "committed", "aborted"):
            self._m_ledger_intents.set(counts.get(state, 0), state=state)
        self._m_ledger_latency.observe(
            time.perf_counter() - started, op="refresh"
        )
        return counts


def build_gateway(
    deployment,
    directory: str,
    *,
    workers: int = 2,
    shards: int | None = None,
    max_batch: int | None = None,
    max_wait: float | None = None,
    max_inflight: int | None = None,
    max_pending: int | None = None,
    tracing: bool = False,
    trace_threshold: float = 0.25,
    trace_keep: int = 64,
    screening_threads: int = 0,
) -> ServiceGateway:
    """One-call gateway over a deployment's provider role.

    Shard files land under ``directory``; ``shards`` defaults to the
    worker count (one hot file per worker, the balanced choice).  The
    gateway shares the deployment's clock, so simulated time drives
    the workers' freshness windows.  ``max_inflight``/``max_pending``
    bound the pool's admission (``None`` keeps it unbounded, the
    pre-overload-control behaviour).

    ``tracing=True`` turns on end-to-end span capture: this process
    gets a :class:`~repro.service.tracing.SpanRecorder` (installed
    *before* construction, so startup intent recovery is traced and
    the pool can register its exemplar hook) and every worker installs
    a :class:`~repro.service.tracing.SpanCollector`.  A trace is kept
    when its boundary span runs at least ``trace_threshold`` seconds,
    errors, or is forced (recovery); the newest ``trace_keep`` kept
    traces survive.

    ``screening_threads`` sizes each worker's screening thread pool
    (0 = serial): the per-item arms of the batch screening stages run
    across those threads, byte-identically to the serial path (see
    ``docs/fastexp.md`` for when this pays).
    """
    shard_count = shards if shards is not None else workers
    paths = ShardSet.paths_in_directory(directory, shard_count)
    knobs = {}
    if max_batch is not None:
        knobs["max_batch"] = max_batch
    if max_wait is not None:
        knobs["max_wait"] = max_wait
    if tracing:
        tracing_module.configure(latency_threshold=trace_threshold, keep=trace_keep)
    config = ServiceConfig.from_deployment(
        deployment, paths, tracing=tracing, **knobs
    )
    if screening_threads:
        config = _replace(config, screening_threads=screening_threads)
    return ServiceGateway(
        config,
        workers=workers,
        clock=deployment.clock,
        max_inflight=max_inflight,
        max_pending=max_pending,
    )
