"""The service gateway: the provider's front door over a worker pool.

The gateway owns the pool: it encodes every request to wire bytes,
routes it to a **shard-affine** worker (the worker whose slot covers
the request's home shard — redemptions of one token always meet on the
same worker queue, so its connection and page cache stay hot), and
matches responses back to callers.  Correctness never depends on the
routing: the per-shard stores serialize racing writers at the SQLite
lock, so even a token deliberately submitted to two workers is spent
exactly once.

The public surface mirrors :class:`~repro.core.actors.provider.
ContentProvider` for everything the rest of the system uses — users,
devices and the marketplace simulator drive a gateway exactly like the
in-process actor.  Reads (audit log, licence register, revocation
sync) are served gateway-side from the same shard files the workers
write, through WAL snapshots.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import threading
import time
from typing import Iterable

from ..core.content import ContentPackage
from ..core.licenses import AnonymousLicense, PersonalLicense
from ..core.messages import (
    Coin,
    DepositRequest,
    ExchangeRequest,
    PurchaseRequest,
    RedeemRequest,
)
from ..errors import RevokedLicenseError, ServiceError, StoreIntegrityError
from ..storage.contents import CatalogEntry, ContentStore
from . import wire
from .sharding import (
    ShardedAuditLog,
    ShardedLicenseStore,
    ShardedRevocationList,
    ShardedSpentTokenStore,
    ShardSet,
)
from .workers import ServiceConfig, _catalog_store, require_start_method, worker_main

#: How long the gateway waits for any worker response before declaring
#: the pool broken.  Generous: smoke-sized crypto on a loaded CI box.
RESPONSE_TIMEOUT = 300.0

#: Upper bound on the unclaimed/abandoned ticket books (see
#: ``ServiceGateway.__init__``).
_BOOKKEEPING_CAP = 4096


class ServiceGateway:
    """Route wire-encoded requests to shard-affine desk workers."""

    def __init__(
        self,
        config: ServiceConfig,
        *,
        workers: int = 2,
        start_method: str | None = None,
        clock=None,
    ):
        if workers < 1:
            raise ServiceError("need at least one worker")
        if workers > len(config.shard_paths):
            # Affinity maps shard -> worker, so surplus workers would
            # never see a request; refuse rather than silently idle.
            raise ServiceError(
                f"{workers} workers but only {len(config.shard_paths)} shards;"
                " use shards >= workers"
            )
        self._config = config
        self._workers = workers
        # The operator's clock.  Every queue item is stamped with it at
        # submit time and workers follow *only* these stamps — time is
        # distributed from the trusted side of the wire, never taken
        # from client-controlled request fields (a signed-but-bogus
        # timestamp must not be able to drag a worker's clock).
        from ..clock import SimClock

        self._clock = clock if clock is not None else SimClock(config.clock_start)
        # Open (and migrate) every shard *before* the pool starts: the
        # gateway's read views double as the schema bootstrap, so
        # workers never race each other on DDL.
        self._shards = ShardSet(config.shard_paths)
        self._licenses = ShardedLicenseStore(self._shards)
        self._revocations = ShardedRevocationList(self._shards)
        self._audit = ShardedAuditLog(self._shards)
        self._spent_tokens = ShardedSpentTokenStore(self._shards, "anon-license")
        self._coin_spent_tokens = ShardedSpentTokenStore(self._shards, "ecash")
        self._contents: ContentStore = _catalog_store(config)
        self._next_request_id = 0
        #: Guards ticket-id allocation so concurrent submitting threads
        #: can never mint duplicate ids.  Gathers should stay on one
        #: thread: concurrent gathers are *safe* (a response popped by
        #: the wrong gather parks in the unclaimed book, which every
        #: wait loop re-checks) but may serialize on the queue.
        self._submit_lock = threading.Lock()
        #: Which worker each outstanding ticket went to — lets a gather
        #: detect that *its* worker died instead of waiting out the
        #: full timeout (or raising on an unrelated worker's death).
        self._ticket_worker: dict[int, int] = {}
        self._unclaimed: dict[int, bytes] = {}
        #: Tickets whose gather failed (timeout / dead worker): their
        #: late responses are dropped on arrival instead of parking in
        #: ``_unclaimed`` forever.  Both books are bounded (oldest
        #: entries evicted past ``_BOOKKEEPING_CAP``) so a long-lived
        #: gateway surviving repeated failures cannot leak memory —
        #: an evicted abandoned id at worst re-parks one late response
        #: in the (equally bounded) unclaimed book.
        self._abandoned: set[int] = set()
        self._closed = False

        context = multiprocessing.get_context(start_method or require_start_method())
        self._request_queues = [context.Queue() for _ in range(workers)]
        self._response_queue = context.Queue()
        self._processes = []
        for index in range(workers):
            process = context.Process(
                target=worker_main,
                args=(index, config, self._request_queues[index], self._response_queue),
                daemon=True,
                name=f"p2drm-worker-{index}",
            )
            process.start()
            self._processes.append(process)

    # -- lifecycle ---------------------------------------------------------

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def shards(self) -> int:
        return len(self._shards)

    def close(self) -> None:
        """Stop the pool and release the gateway's shard handles."""
        if self._closed:
            return
        self._closed = True
        for request_queue in self._request_queues:
            try:
                request_queue.put(None)
            except (OSError, ValueError):
                pass
        for process in self._processes:
            process.join(timeout=30)
        for process in self._processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)
        self._shards.close()

    def __enter__(self) -> "ServiceGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- routing and collection --------------------------------------------

    def _affinity_token(self, request) -> bytes:
        if isinstance(request, RedeemRequest):
            return request.anonymous_license.license_id
        if isinstance(request, ExchangeRequest):
            return request.license_id
        if isinstance(request, PurchaseRequest):
            return request.certificate.fingerprint
        if isinstance(request, DepositRequest):
            # The actual spend key (value||serial), so the deposit
            # lands on the worker whose slot owns the coin's shard.
            return request.coins[0].spent_token() if request.coins else b"deposit"
        raise ServiceError(f"unroutable request {type(request).__name__}")

    def worker_for(self, request) -> int:
        """The shard-affine worker index for a request (exposed for
        tests that need to *defeat* affinity and race two workers)."""
        return self._shards.index_for(self._affinity_token(request)) % self._workers

    def _submit(self, request, *, worker: int | None = None) -> int:
        if self._closed:
            raise ServiceError("gateway is closed")
        with self._submit_lock:
            request_id = self._next_request_id
            self._next_request_id += 1
        target = self.worker_for(request) if worker is None else worker % self._workers
        self._ticket_worker[request_id] = target
        self._request_queues[target].put(
            (request_id, wire.encode_request(request), self._clock.now())
        )
        return request_id

    def _collect(self, request_ids: list[int]) -> list:
        wanted = set(request_ids)
        gathered: dict[int, bytes] = {}
        deadline = time.monotonic() + RESPONSE_TIMEOUT
        dead_since: float | None = None
        while wanted:
            # Re-checked every iteration, not just on entry: another
            # gather (interleaved caller, or a concurrent thread on
            # the shared response queue) may park our response in the
            # unclaimed book while we wait.
            for request_id in list(wanted):
                if request_id in self._unclaimed:
                    gathered[request_id] = self._unclaimed.pop(request_id)
                    wanted.discard(request_id)
            if not wanted:
                break
            # Liveness and deadline are checked every iteration (not
            # only when the queue runs dry — steady unrelated traffic
            # must not mask a dead worker or an expired deadline).
            # Only the workers holding OUR tickets matter; a short
            # grace lets a response the worker flushed just before
            # dying drain out of the queue first.
            dead = self._dead_wanted_workers(wanted)
            if dead:
                if dead_since is None:
                    dead_since = time.monotonic()
                elif time.monotonic() - dead_since > 2.0:
                    self._fail_collect(wanted, gathered)
                    raise ServiceError(
                        f"worker(s) died with requests outstanding: {dead}"
                    )
            else:
                dead_since = None
            if time.monotonic() > deadline:
                self._fail_collect(wanted, gathered)
                raise ServiceError(
                    f"no worker response within {RESPONSE_TIMEOUT}s"
                )
            try:
                request_id, payload = self._response_queue.get(timeout=1.0)
            except queue_module.Empty:
                if dead:
                    # Queue drained and the ticket's worker is gone —
                    # its unflushed responses died with it.
                    self._fail_collect(wanted, gathered)
                    raise ServiceError(
                        f"worker(s) died with requests outstanding: {dead}"
                    ) from None
                continue
            if request_id in wanted:
                gathered[request_id] = payload
                wanted.discard(request_id)
                self._ticket_worker.pop(request_id, None)
            elif request_id in self._abandoned:
                self._abandoned.discard(request_id)
            else:
                self._unclaimed[request_id] = payload
                while len(self._unclaimed) > _BOOKKEEPING_CAP:
                    self._unclaimed.pop(next(iter(self._unclaimed)))
        for request_id in request_ids:
            self._ticket_worker.pop(request_id, None)
        return [wire.decode_response(gathered[rid]) for rid in request_ids]

    def _dead_wanted_workers(self, wanted: set) -> list[str]:
        """Names of dead workers that still owe a wanted response."""
        owing = {
            self._ticket_worker[rid]
            for rid in wanted
            if rid in self._ticket_worker
        }
        return [
            self._processes[index].name
            for index in sorted(owing)
            if not self._processes[index].is_alive()
        ]

    def _fail_collect(self, wanted: set, gathered: dict) -> None:
        """Bookkeeping for a gather that is about to raise: responses
        already received go back to ``_unclaimed`` (their side effects
        committed — a caller who kept the tickets can still gather
        them), and the truly missing tickets are marked abandoned so a
        late response is dropped instead of parked forever."""
        self._unclaimed.update(gathered)
        self._abandoned.update(wanted)
        for request_id in wanted:
            self._ticket_worker.pop(request_id, None)
        while len(self._unclaimed) > _BOOKKEEPING_CAP:
            self._unclaimed.pop(next(iter(self._unclaimed)))
        while len(self._abandoned) > _BOOKKEEPING_CAP:
            self._abandoned.discard(min(self._abandoned))

    def submit(self, request, *, worker: int | None = None) -> int:
        """Enqueue one request; returns a ticket for :meth:`gather`.

        ``worker`` overrides shard affinity — how tests race the same
        token onto two different workers on purpose.
        """
        return self._submit(request, worker=worker)

    def gather(self, request_ids: list[int]) -> list:
        """Results (or rejecting exceptions) for submitted tickets,
        aligned with ``request_ids``."""
        return self._collect(request_ids)

    def call(self, request):
        """One request, synchronously; desk rejections are raised."""
        result = self._collect([self._submit(request)])[0]
        if isinstance(result, BaseException):
            raise result
        return result

    def call_many(self, requests: Iterable, *, worker: int | None = None) -> list:
        """A queue of requests with batch-desk semantics: the returned
        list aligns with the inputs and holds results or the exception
        that rejected each item — one offender never poisons the rest.

        ``worker`` pins every request to one worker (tests use it to
        stage double-spend races); default is shard affinity.
        """
        request_ids = [
            self._submit(request, worker=worker) for request in requests
        ]
        return self._collect(request_ids)

    # -- the provider surface ----------------------------------------------

    @property
    def name(self) -> str:
        return self._config.provider_name

    @property
    def license_key(self):
        """Licence/LRL-snapshot verification key (devices pin this)."""
        return self._config.license_key.public_key

    @property
    def license_register(self) -> ShardedLicenseStore:
        return self._licenses

    @property
    def audit_log(self) -> ShardedAuditLog:
        return self._audit

    @property
    def revocation_list(self) -> ShardedRevocationList:
        return self._revocations

    @property
    def spent_tokens(self) -> ShardedSpentTokenStore:
        return self._spent_tokens

    @property
    def coin_spent_tokens(self) -> ShardedSpentTokenStore:
        return self._coin_spent_tokens

    def catalog(self) -> list[CatalogEntry]:
        return self._contents.catalog()

    def price(self, content_id: str) -> int:
        return self._contents.price(content_id)

    def download(self, content_id: str) -> ContentPackage:
        return ContentPackage.from_bytes(self._contents.package(content_id))

    def sell(self, request: PurchaseRequest) -> PersonalLicense:
        return self.call(request)

    def sell_batch(self, requests: list[PurchaseRequest]) -> list:
        return self.call_many(requests)

    def exchange(self, request: ExchangeRequest) -> AnonymousLicense:
        return self.call(request)

    def redeem(self, request: RedeemRequest) -> PersonalLicense:
        return self.call(request)

    def redeem_batch(self, requests: list[RedeemRequest]) -> list:
        return self.call_many(requests)

    def deposit(self, account: str, coins: list[Coin]) -> dict:
        return self.call(DepositRequest(account=account, coins=tuple(coins)))

    def revocation_sync(self, since_version: int):
        """Delta entries plus a signed snapshot for device sync.

        One merged scan feeds both (see
        :meth:`~repro.service.sharding.ShardedRevocationList.sync_since`)
        so a concurrent worker revocation cannot produce a snapshot
        whose root covers an entry the delta omits.
        """
        return self._revocations.sync_since(
            since_version, self._config.license_key
        )

    def prove_not_revoked(self, license_id: bytes):
        if self._revocations.is_revoked(license_id):
            raise RevokedLicenseError(
                f"licence {license_id.hex()[:16]} is revoked"
            )
        # Snapshot and proof must come from ONE scan: workers revoke
        # concurrently, and a proof against a newer tree than the
        # signed root would spuriously fail verification.
        snapshot, tree = self._revocations.snapshot_with_tree(
            self._config.license_key
        )
        try:
            proof = tree.prove_non_inclusion(license_id)
        except StoreIntegrityError:
            # A worker revoked it between the is_revoked check and the
            # scan — that is a plain revocation, not corrupted state.
            raise RevokedLicenseError(
                f"licence {license_id.hex()[:16]} is revoked"
            ) from None
        return snapshot, proof


def build_gateway(
    deployment,
    directory: str,
    *,
    workers: int = 2,
    shards: int | None = None,
    max_batch: int | None = None,
    max_wait: float | None = None,
) -> ServiceGateway:
    """One-call gateway over a deployment's provider role.

    Shard files land under ``directory``; ``shards`` defaults to the
    worker count (one hot file per worker, the balanced choice).  The
    gateway shares the deployment's clock, so simulated time drives
    the workers' freshness windows.
    """
    shard_count = shards if shards is not None else workers
    paths = ShardSet.paths_in_directory(directory, shard_count)
    knobs = {}
    if max_batch is not None:
        knobs["max_batch"] = max_batch
    if max_wait is not None:
        knobs["max_wait"] = max_wait
    config = ServiceConfig.from_deployment(deployment, paths, **knobs)
    return ServiceGateway(config, workers=workers, clock=deployment.clock)


__all__ = ["ServiceGateway", "ServiceConfig", "build_gateway"]
