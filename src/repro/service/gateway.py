"""The service gateway: the provider's front door over a worker pool.

The heavy lifting — processes, queues, shard-affine routing, ticket
bookkeeping, dead-worker detection — lives in the transport-agnostic
:class:`~repro.service.pool.WorkerPool`; the gateway is the
*in-process* :class:`~repro.service.transport.Transport` over it plus
the provider-surface facade and the operator's read views.  The
asyncio socket front-end (:mod:`repro.service.netserver`) shares the
same pool core, which is why the two paths cannot drift apart.

The public surface mirrors :class:`~repro.core.actors.provider.
ContentProvider` for everything the rest of the system uses — users,
devices and the marketplace simulator drive a gateway exactly like the
in-process actor.  Reads (audit log, licence register, revocation
sync) are served gateway-side from the same shard files the workers
write, through WAL snapshots.
"""

from __future__ import annotations

from ..core.content import ContentPackage
from ..core.licenses import AnonymousLicense, PersonalLicense
from ..core.messages import (
    Coin,
    DepositRequest,
    ExchangeRequest,
    PurchaseRequest,
    RedeemRequest,
)
from ..errors import RevokedLicenseError, StoreIntegrityError
from ..storage.contents import CatalogEntry, ContentStore
from .pool import RESPONSE_TIMEOUT, WorkerPool
from .sharding import (
    ShardedAuditLog,
    ShardedLicenseStore,
    ShardedRevocationList,
    ShardedSpentTokenStore,
    ShardSet,
)
from .transport import Transport
from .workers import ServiceConfig, _catalog_store

__all__ = [
    "ServiceGateway",
    "ServiceConfig",
    "ProviderSurface",
    "build_gateway",
    "RESPONSE_TIMEOUT",
]


class ProviderSurface(Transport):
    """The protocol half of the provider facade, written once.

    Everything here reduces to :meth:`~repro.service.transport.
    Transport.submit` / :meth:`~repro.service.transport.Transport.
    gather`, so the in-process gateway and the network client present
    the same surface by inheritance, not by parallel maintenance.
    """

    def sell(self, request: PurchaseRequest) -> PersonalLicense:
        return self.call(request)

    def sell_batch(self, requests: list[PurchaseRequest]) -> list:
        return self.call_many(requests)

    def exchange(self, request: ExchangeRequest) -> AnonymousLicense:
        return self.call(request)

    def redeem(self, request: RedeemRequest) -> PersonalLicense:
        return self.call(request)

    def redeem_batch(self, requests: list[RedeemRequest]) -> list:
        return self.call_many(requests)

    def deposit(self, account: str, coins: list[Coin]) -> dict:
        return self.call(DepositRequest(account=account, coins=tuple(coins)))


class ServiceGateway(ProviderSurface):
    """Route requests to shard-affine desk workers, in-process."""

    def __init__(
        self,
        config: ServiceConfig,
        *,
        workers: int = 2,
        start_method: str | None = None,
        clock=None,
        max_inflight: int | None = None,
        max_pending: int | None = None,
        registry=None,
    ):
        # Open (and migrate) every shard *before* the pool starts: the
        # gateway's read views double as the schema bootstrap, so
        # workers never race each other on DDL.
        self._config = config
        self._shards = ShardSet(config.shard_paths)
        self._licenses = ShardedLicenseStore(self._shards)
        self._revocations = ShardedRevocationList(self._shards)
        self._audit = ShardedAuditLog(self._shards)
        self._spent_tokens = ShardedSpentTokenStore(self._shards, "anon-license")
        self._coin_spent_tokens = ShardedSpentTokenStore(self._shards, "ecash")
        self._contents: ContentStore = _catalog_store(config)
        self._closed = False
        try:
            self._pool = WorkerPool(
                config,
                workers=workers,
                start_method=start_method,
                clock=clock,
                max_inflight=max_inflight,
                max_pending=max_pending,
                registry=registry,
            )
        except BaseException:
            self._shards.close()
            raise

    # -- lifecycle ---------------------------------------------------------

    @property
    def pool(self) -> WorkerPool:
        """The transport-agnostic core (shared with the socket server)."""
        return self._pool

    @property
    def workers(self) -> int:
        return self._pool.workers

    @property
    def metrics(self):
        """The pool's :class:`~repro.service.metrics.MetricsRegistry`
        (shared with whatever socket front-end wraps this gateway)."""
        return self._pool.metrics

    @property
    def shards(self) -> int:
        return len(self._shards)

    @property
    def _processes(self) -> list:
        """Worker process handles (tests kill these deliberately)."""
        return self._pool.processes

    @property
    def _abandoned(self) -> set:
        """The pool's abandoned-ticket book (asserted on in tests)."""
        return self._pool._abandoned

    def close(self) -> None:
        """Stop the pool and release the gateway's shard handles."""
        if self._closed:
            return
        self._closed = True
        self._pool.close()
        self._shards.close()

    def __enter__(self) -> "ServiceGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the transport -----------------------------------------------------

    def worker_for(self, request) -> int:
        """The shard-affine worker index for a request (exposed for
        tests that need to *defeat* affinity and race two workers)."""
        return self._pool.worker_for(request)

    def submit(self, request, *, worker: int | None = None) -> int:
        """Enqueue one request; returns a ticket for :meth:`gather`.

        ``worker`` overrides shard affinity — how tests race the same
        token onto two different workers on purpose.
        """
        return self._pool.submit(request, worker=worker)

    def gather(self, request_ids: list[int]) -> list:
        """Results (or rejecting exceptions) for submitted tickets,
        aligned with ``request_ids``."""
        return self._pool.gather(request_ids)

    # -- the provider read surface -----------------------------------------

    @property
    def name(self) -> str:
        return self._config.provider_name

    @property
    def license_key(self):
        """Licence/LRL-snapshot verification key (devices pin this)."""
        return self._config.license_key.public_key

    @property
    def license_register(self) -> ShardedLicenseStore:
        return self._licenses

    @property
    def audit_log(self) -> ShardedAuditLog:
        return self._audit

    @property
    def revocation_list(self) -> ShardedRevocationList:
        return self._revocations

    @property
    def spent_tokens(self) -> ShardedSpentTokenStore:
        return self._spent_tokens

    @property
    def coin_spent_tokens(self) -> ShardedSpentTokenStore:
        return self._coin_spent_tokens

    def catalog(self) -> list[CatalogEntry]:
        return self._contents.catalog()

    def price(self, content_id: str) -> int:
        return self._contents.price(content_id)

    def package(self, content_id: str) -> bytes:
        """The sealed package bytes (what :meth:`download` parses —
        and what the socket server ships to remote clients)."""
        return self._contents.package(content_id)

    def download(self, content_id: str) -> ContentPackage:
        return ContentPackage.from_bytes(self.package(content_id))

    def revocation_sync(self, since_version: int):
        """Delta entries plus a signed snapshot for device sync.

        One merged scan feeds both (see
        :meth:`~repro.service.sharding.ShardedRevocationList.sync_since`)
        so a concurrent worker revocation cannot produce a snapshot
        whose root covers an entry the delta omits.
        """
        return self._revocations.sync_since(
            since_version, self._config.license_key
        )

    def prove_not_revoked(self, license_id: bytes):
        if self._revocations.is_revoked(license_id):
            raise RevokedLicenseError(
                f"licence {license_id.hex()[:16]} is revoked"
            )
        # Snapshot and proof must come from ONE scan: workers revoke
        # concurrently, and a proof against a newer tree than the
        # signed root would spuriously fail verification.
        snapshot, tree = self._revocations.snapshot_with_tree(
            self._config.license_key
        )
        try:
            proof = tree.prove_non_inclusion(license_id)
        except StoreIntegrityError:
            # A worker revoked it between the is_revoked check and the
            # scan — that is a plain revocation, not corrupted state.
            raise RevokedLicenseError(
                f"licence {license_id.hex()[:16]} is revoked"
            ) from None
        return snapshot, proof


def build_gateway(
    deployment,
    directory: str,
    *,
    workers: int = 2,
    shards: int | None = None,
    max_batch: int | None = None,
    max_wait: float | None = None,
    max_inflight: int | None = None,
    max_pending: int | None = None,
) -> ServiceGateway:
    """One-call gateway over a deployment's provider role.

    Shard files land under ``directory``; ``shards`` defaults to the
    worker count (one hot file per worker, the balanced choice).  The
    gateway shares the deployment's clock, so simulated time drives
    the workers' freshness windows.  ``max_inflight``/``max_pending``
    bound the pool's admission (``None`` keeps it unbounded, the
    pre-overload-control behaviour).
    """
    shard_count = shards if shards is not None else workers
    paths = ShardSet.paths_in_directory(directory, shard_count)
    knobs = {}
    if max_batch is not None:
        knobs["max_batch"] = max_batch
    if max_wait is not None:
        knobs["max_wait"] = max_wait
    config = ServiceConfig.from_deployment(deployment, paths, **knobs)
    return ServiceGateway(
        config,
        workers=workers,
        clock=deployment.clock,
        max_inflight=max_inflight,
        max_pending=max_pending,
    )
