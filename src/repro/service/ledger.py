"""The sharded bank ledger and the cross-shard deposit sequencer (2PC).

Money service-side lives where the coins do: in the shard files.
Accounts are routed by ``sha256(account_id)`` exactly like spent
tokens are routed by ``sha256(value||serial)`` — every account has one
home shard holding its balance, journal and deposit intents, so
balance updates serialize at that shard's SQLite write lock no matter
which worker performs them.

A multi-coin deposit is the one operation that touches *several* shard
files: each coin spends on its own home shard, the credit lands on the
account's home shard.  :class:`DepositSequencer` makes that atomic with
a two-phase intent protocol:

1. **prepare** — a durable *pending* intent (id, account, amount, the
   coin list) is written to the account's home shard before any coin
   is touched;
2. **spend** — each coin is marked spent on its home shard with a
   transcript naming the intent, in canonical token order (ordered
   acquisition: concurrent payments sharing coins cannot deadlock);
3. **commit** — ONE transaction on the account's home shard flips the
   intent to *committed* and credits the balance.  That transaction is
   the commit point: before it the deposit presumptively never
   happened, after it every spent coin is attributable.

Failure handling is presumed-abort.  A conflict mid-spend releases
this payment's own spends and flips the intent to *aborted*; a crash
leaves a pending intent whose spends :func:`recover_intents` releases
at the next pool start.  Either way no coin stays spent without a
committed credit — the crash window the per-worker desk documented is
closed, and ``tools/ledger_audit.py`` can prove it offline from the
shard files alone.

The sequencer also absorbs the documented transient-refusal race:
finding a coin spent under another payment's *pending* intent no
longer refuses the deposit outright — the sequencer waits (bounded)
for the owner to commit or abort, then either inherits the released
coin or reports a truthful double spend against a committed owner.
An owner still pending when the wait budget runs out gets a
*retryable* :class:`~repro.errors.ServiceError`, never a double-spend
verdict: a stuck peer is infrastructure trouble, not evidence of
misuse by the waiting payer.

Every compensating release is a compare-and-delete against the spend
record the releaser actually observed
(:meth:`~repro.storage.spent_tokens.SpentTokenStore.unspend_if`): two
workers that both read the same stale spend cannot both release it,
so a released-and-immediately-respent coin can never have its *fresh*
spend erased by the second releaser — "a credited spend is permanent"
survives concurrent self-healing.
"""

from __future__ import annotations

import os
import time

from .. import codec
from ..errors import DoubleSpendError, PaymentError, ServiceError
from ..storage.ledger import (
    INTENT_ABORTED,
    INTENT_COMMITTED,
    INTENT_PENDING,
    IntentRecord,
    LedgerEntry,
    LedgerStore,
)
from . import tracing
from .sharding import ShardedSpentTokenStore, ShardSet

__all__ = [
    "ShardedLedger",
    "DepositSequencer",
    "recover_intents",
    "DEFAULT_WAIT_BUDGET",
]

#: How long a deposit waits on a coin held by another payment's pending
#: intent before giving up.  In-flight owners resolve in milliseconds;
#: an owner that stays pending this long is crashed or stuck (the
#: ``LedgerIntentStuck`` alert's territory), and the waiting payment is
#: refused with a retryable :class:`~repro.errors.ServiceError` — the
#: coins stay the payer's to present again once the stuck owner is
#: recovered.
DEFAULT_WAIT_BUDGET = 2.0
_POLL_INTERVAL = 0.01


class ShardedLedger:
    """:class:`~repro.storage.ledger.LedgerStore` over shard files.

    Accounts route by id hash; cross-account reads (totals, intent
    counts, the audit surface) merge every shard.  Writes happen in
    whichever process holds the deposit or withdrawal — the shard
    file's write lock is the serialization point, same as the
    spent-token gate.
    """

    def __init__(self, shards: ShardSet):
        self._shards = shards
        self._stores = [LedgerStore(db) for db in shards.databases]

    def store_for(self, account_id: str) -> LedgerStore:
        """The account's home-shard store (exposed for the audit tool
        and tests that stage partial states deliberately)."""
        return self._stores[self.shard_for(account_id)]

    def shard_for(self, account_id: str) -> int:
        """The account's home shard index (also a trace attribute —
        the index is routing structure, not identity)."""
        return self._shards.index_for(account_id.encode("utf-8"))

    @property
    def stores(self) -> list[LedgerStore]:
        return list(self._stores)

    # -- accounts ----------------------------------------------------------

    def open_account(
        self, account_id: str, *, at: int, initial_balance: int = 0
    ) -> None:
        self.store_for(account_id).open_account(
            account_id, at=at, initial_balance=initial_balance
        )

    def ensure_account(self, account_id: str, *, at: int) -> bool:
        return self.store_for(account_id).ensure_account(account_id, at=at)

    def has_account(self, account_id: str) -> bool:
        return self.store_for(account_id).has_account(account_id)

    def balance(self, account_id: str) -> int:
        """The pool-wide balance; raises the bank's own refusal for an
        unknown account so surface parity with :class:`~repro.core.
        actors.bank.Bank` holds."""
        balance = self.store_for(account_id).balance(account_id)
        if balance is None:
            raise PaymentError(f"no account {account_id!r}")
        return balance

    def accounts(self) -> list[str]:
        merged: list[str] = []
        for store in self._stores:
            merged.extend(store.accounts())
        merged.sort()
        return merged

    def total_balance(self) -> int:
        return sum(
            store.database.query_value(
                "SELECT COALESCE(SUM(balance), 0) FROM ledger_accounts",
                default=0,
            )
            for store in self._stores
        )

    # -- journal / withdrawals --------------------------------------------

    def statement(
        self, account_id: str, *, limit: int | None = None
    ) -> list[LedgerEntry]:
        if not self.has_account(account_id):
            raise PaymentError(f"no account {account_id!r}")
        return self.store_for(account_id).statement(account_id, limit=limit)

    def debit(
        self,
        account_id: str,
        amount: int,
        *,
        at: int,
        kind: str = "withdraw",
        transcript: bytes = b"",
    ) -> int:
        return self.store_for(account_id).debit(
            account_id, amount, at=at, kind=kind, transcript=transcript
        )

    def entry_sum(self, account_id: str) -> int:
        return self.store_for(account_id).entry_sum(account_id)

    # -- intents -----------------------------------------------------------

    def intent_state(self, account_id: str, intent_id: bytes) -> str | None:
        """State of an intent known to live on ``account_id``'s home
        shard (the spend transcripts name their depositor, so the
        sequencer always has the owning account in hand)."""
        return self.store_for(account_id).intent_state(intent_id)

    def find_intent(self, intent_id: bytes) -> IntentRecord | None:
        """Locate an intent by id alone (audit path: scans all shards)."""
        for store in self._stores:
            record = store.intent(intent_id)
            if record is not None:
                return record
        return None

    def intents(self, state: str | None = None) -> list[IntentRecord]:
        merged: list[IntentRecord] = []
        for store in self._stores:
            merged.extend(store.intents(state))
        merged.sort(key=lambda record: (record.created_at, record.intent_id))
        return merged

    def intent_counts(self) -> dict[str, int]:
        totals = {INTENT_PENDING: 0, INTENT_COMMITTED: 0, INTENT_ABORTED: 0}
        for store in self._stores:
            for state, count in store.intent_counts().items():
                totals[state] = totals.get(state, 0) + count
        return totals


def intent_payload(pairs: list[tuple[bytes, int]]) -> bytes:
    """Canonical bytes for an intent's coin list (token, value pairs in
    canonical token order) — what recovery and the audit decode to know
    exactly which spends an intent owns."""
    return codec.encode([{"token": t, "value": v} for t, v in pairs])


def decode_intent_payload(payload: bytes) -> list[tuple[bytes, int]]:
    return [
        (bytes(item["token"]), int(item["value"]))
        for item in codec.decode(payload)
    ]


def spend_transcript_fields(transcript: bytes) -> dict | None:
    """Decoded spend-transcript dict, or ``None`` for undecodable bytes
    (a legacy or foreign row — treated as an unattributable spend)."""
    try:
        fields = codec.decode(transcript)
    except Exception:
        return None
    return fields if isinstance(fields, dict) else None


class DepositSequencer:
    """Cross-shard atomic deposits over the intent protocol above."""

    def __init__(
        self,
        *,
        ledger: ShardedLedger,
        spent: ShardedSpentTokenStore,
        clock,
        wait_budget: float = DEFAULT_WAIT_BUDGET,
        intent_ids=None,
    ):
        self._ledger = ledger
        self._spent = spent
        self._clock = clock
        self._wait_budget = wait_budget
        # Intent ids are random, not derived from the payment: two
        # distinct presentations of the same coins (the raced-purchase
        # case) must be two intents, so exactly one commits and the
        # other gets a truthful double-spend verdict.  os.urandom never
        # touches the deterministic issuance rng, so licence bytes stay
        # byte-identical to the in-process reference.
        self._intent_ids = intent_ids or (lambda: os.urandom(16))

    def deposit(self, account_id: str, coins: list, *, pre_commit=None) -> int:
        """Spend ``coins`` across their home shards and credit
        ``account_id`` atomically; returns the amount credited.

        ``pre_commit(intent_id)``, when given, runs after every coin is
        spent but *before* the commit point.  It is the seam the
        idempotent-replay cache uses to make its record durable strictly
        earlier than the credit it describes: a crash between the two
        leaves a record pointing at a pending intent, which recovery
        aborts — the record is then stale and lookups treat it as a
        miss.  The converse order would open a window where a committed
        deposit has no replay record and a retry earns a false
        ``DoubleSpendError``.  An exception from the hook aborts the
        intent, releases this payment's spends, and propagates.

        Raises :class:`~repro.errors.DoubleSpendError` when any coin is
        genuinely owned by a committed deposit (including a replay of
        this same payment), with this payment's own spends released and
        its intent aborted — a refused deposit costs the payer nothing.
        Raises a retryable :class:`~repro.errors.ServiceError` when a
        coin is held by a pending intent that never resolves within the
        wait budget, or when this payment's own intent is aborted out
        from under it (an operator repair racing a live pool) — in both
        cases, again, with this payment's spends released.
        """
        coins = list(coins)
        now = self._clock.now()
        self._ledger.ensure_account(account_id, at=now)
        if not coins:
            return 0
        ordered = sorted(
            ((coin.spent_token(), coin) for coin in coins),
            key=lambda pair: pair[0],
        )
        # A serial repeated WITHIN the batch must be refused before any
        # durable state: under one intent the second spend would look
        # like "our own" and double-count the coin's value.
        for (token, _), (other, coin) in zip(ordered, ordered[1:]):
            if token == other:
                raise DoubleSpendError(coin.serial)

        amount = sum(coin.value for coin in coins)
        intent_id = bytes(self._intent_ids())
        pairs = [(token, coin.value) for token, coin in ordered]
        home_shard = self._ledger.shard_for(account_id)
        with tracing.span("ledger.intent.create", shard=home_shard, coins=len(coins)):
            self._ledger.store_for(account_id).create_intent(
                intent_id, account_id, amount, at=now, payload=intent_payload(pairs)
            )

        spent_here: list[tuple[bytes, bytes]] = []
        for token, coin in ordered:
            transcript = codec.encode(
                {
                    "depositor": account_id,
                    "at": now,
                    "value": coin.value,
                    "intent": intent_id,
                }
            )
            with tracing.span("ledger.spend", shard=self._spent.shard_for(token)):
                self._spend_one(
                    token, coin, intent_id, account_id, now, transcript, spent_here
                )
        if pre_commit is not None:
            try:
                pre_commit(intent_id)
            except BaseException:
                self._abort(intent_id, account_id, now, spent_here)
                raise
        with tracing.span("ledger.commit", shard=home_shard) as commit_span:
            committed = self._ledger.store_for(account_id).commit_intent(
                intent_id, at=now, transcript=intent_payload(pairs)
            )
            if not committed:
                commit_span.mark_error("ServiceError")
        if not committed:
            # The intent left pending state under us — only an operator
            # repair or a recovery run racing the live pool does that
            # (intent ids are private to this call, so no twin attempt
            # exists).  Whatever aborted it has released (or will
            # release) the spends; finish our own share and refuse
            # retryably.  Never report success: no balance changed, and
            # returning `amount` here would be a phantom credit.
            state = self._ledger.intent_state(account_id, intent_id)
            if state != INTENT_COMMITTED:
                self._release(spent_here)
                raise ServiceError(
                    f"deposit intent {intent_id.hex()[:16]} was"
                    f" {state or 'removed'} before its commit point"
                    " (recovery or repair ran against the live pool);"
                    " no credit happened — retry the deposit"
                )
        return amount

    # -- the spend loop ----------------------------------------------------

    def _spend_one(
        self, token, coin, intent_id, account_id, now, transcript, spent_here
    ) -> None:
        """Spend one coin under the intent, waiting out transient
        owners; appends ``(token, transcript)`` to ``spent_here`` on
        success or aborts the whole payment on a genuine conflict."""
        deadline = time.monotonic() + self._wait_budget
        while True:
            previous = self._spent.try_spend(token, at=now, transcript=transcript)
            if previous is None:
                spent_here.append((token, transcript))
                return
            fields = spend_transcript_fields(previous.transcript)
            owner = None if fields is None else fields.get("intent")
            if isinstance(owner, bytes) and owner == intent_id:
                # Already ours (defensive: duplicate tokens are screened
                # out above, so this branch should be unreachable).
                return
            owner_state = self._owner_state(fields)
            if owner_state == INTENT_ABORTED:
                # The owner aborted but its release of this coin failed
                # (a busy shard mid-compensation).  An aborted intent
                # can never commit, so the spend is inert — finish the
                # release on its behalf and retry.  The release is a
                # compare-and-delete against the exact record observed:
                # another payment racing this same self-heal may already
                # have released AND respent the coin, and deleting by
                # token alone would erase that winner's fresh — possibly
                # committed — spend (a coin credited twice).  Losing the
                # CAS just means the next try_spend reads the new owner.
                self._spent.unspend_if(token, previous.transcript)
                continue
            if owner_state == INTENT_PENDING:
                # The documented race: an in-flight payment transiently
                # holds the coin.  Its intent must resolve — commit or
                # abort — so wait it out instead of refusing an honest
                # payment with a misuse verdict.
                if time.monotonic() < deadline:
                    time.sleep(_POLL_INTERVAL)
                    continue
                # Still pending past the budget: the owner is stuck or
                # crashed, which is *infrastructure* trouble.  Refuse
                # retryably — a double-spend verdict here would brand an
                # honest payer with a misuse finding over a peer's
                # crash.  Once recovery aborts the stuck owner, the
                # retry inherits the coin cleanly.
                self._abort(intent_id, account_id, now, spent_here)
                raise ServiceError(
                    f"coin {coin.serial.hex()[:16]} is held by deposit"
                    f" intent {owner.hex()[:16] if isinstance(owner, bytes) else '?'}"
                    " that did not resolve within"
                    f" {self._wait_budget:g}s; no verdict on the coin —"
                    " retry after the stuck deposit is recovered"
                )
            # Committed or unattributable: a truthful double spend.
            # Release what this payment spent and abort its intent
            # before surfacing the verdict.
            self._abort(intent_id, account_id, now, spent_here)
            raise DoubleSpendError(coin.serial)

    def _owner_state(self, fields: dict | None) -> str | None:
        if fields is None:
            return None
        owner = fields.get("intent")
        depositor = fields.get("depositor")
        if not isinstance(owner, bytes) or not isinstance(depositor, str):
            # Pre-ledger transcript shape: the spend predates intents,
            # so it is as settled as a committed one.
            return INTENT_COMMITTED
        return self._ledger.intent_state(depositor, bytes(owner))

    def _release(self, spent_here) -> None:
        """Release this payment's own spends — conditional on each
        record still being the one this payment wrote (another process
        may have legitimately released-and-respent a coin after our
        intent went terminal)."""
        with tracing.span("ledger.release", n=len(spent_here)):
            for token, transcript in spent_here:
                try:
                    self._spent.unspend_if(token, transcript)
                except Exception:
                    # A busy shard must not mask the refusal verdict or
                    # stop the remaining releases; the coin's spend
                    # still names this (now aborted) intent, so any
                    # later payment — or recovery, or the audit — can
                    # release it safely.
                    pass

    def _abort(self, intent_id, account_id, now, spent_here) -> None:
        self._release(spent_here)
        with tracing.span(
            "ledger.abort", shard=self._ledger.shard_for(account_id)
        ):
            self._ledger.store_for(account_id).abort_intent(intent_id, at=now)


def recover_intents(
    ledger: ShardedLedger, spent: ShardedSpentTokenStore, *, at: int
) -> dict:
    """Presumed-abort recovery: resolve every pending intent left by a
    crashed pool.  Run at gateway construction, BEFORE workers start —
    exactly one process may recover a shard directory at a time.

    A pending intent by definition never reached its commit point (the
    commit transaction flips the state), so its deposit never happened:
    release whichever of its coins got spent under it and mark it
    aborted.  The payer's retry then goes through cleanly.  Returns
    ``{"aborted": ..., "released": ...}`` for the operator's log.

    With tracing enabled the sweep is its own force-kept trace — the
    ``ledger.recover`` root with one ``ledger.recover.intent`` span per
    presumed-aborted intent — so a crash's recovery reads as a causal
    story next to the error trace the crash produced.
    """
    aborted = 0
    released = 0
    with tracing.span(
        "ledger.recover", root=True, boundary=True, force_keep=True
    ) as sweep:
        for record in ledger.intents(INTENT_PENDING):
            with tracing.span(
                "ledger.recover.intent",
                shard=ledger.shard_for(record.account_id),
            ) as intent_span:
                intent_released = 0
                for token, _value in decode_intent_payload(record.payload):
                    spend = spent.record_for(token)
                    if spend is None:
                        continue
                    fields = spend_transcript_fields(spend.transcript)
                    if fields is None or fields.get("intent") != record.intent_id:
                        continue  # owned by someone else; not ours to touch
                    # CAS on the observed record: recovery runs
                    # exclusively by contract, but if that contract is
                    # ever broken a racing payment's fresh re-spend must
                    # not be deleted by token alone.
                    if spent.unspend_if(token, spend.transcript):
                        released += 1
                        intent_released += 1
                intent_span.set("released", intent_released)
                if ledger.store_for(record.account_id).abort_intent(
                    record.intent_id, at=at
                ):
                    aborted += 1
        sweep.set("aborted", aborted)
        sweep.set("released", released)
    return {"aborted": aborted, "released": released}
