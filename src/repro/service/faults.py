"""Deterministic fault injection for the service transports.

Robustness claims need an adversarial network you can *rerun*: a retry
bug that only shows under one interleaving of resets and truncations
is worthless to chase with a real flaky link.  This module injects
faults on a seeded, reproducible schedule at the two seams the stack
already has:

- :class:`ChaosListener` — a frame-aware TCP proxy implementing the
  :class:`~repro.service.transport.Listener` surface.  It sits between
  a real client and a real :class:`~repro.service.netserver.NetServer`
  and, per forwarded frame, can **reset** the connection, **truncate**
  mid-frame, **blackhole** (drop) the frame, **duplicate** it, or
  **delay** it.  Clean frames are re-encoded via the canonical
  framer, so byte-identity through the proxy is by construction.
- :class:`ChaosTransport` — the queue-path twin, wrapping any
  :class:`~repro.service.transport.Transport`.  Its faults model the
  two sides of a lost message: *lost request* (fails before the inner
  submit — no side effect) and *lost response* (inner submit happens,
  then the caller sees a failure — the side effect **stands**), plus
  duplicate submission of the same verbatim envelope.

Determinism: every connection (or submit) draws from its own
``random.Random`` seeded by ``(plan seed, serial, direction)``, so a
schedule replays exactly regardless of thread interleaving — two runs
with the same seed fault the same frames the same way.
"""

from __future__ import annotations

import random
import socket as socket_module
import threading
import time
from dataclasses import dataclass

from ..errors import ServiceError
from .transport import (
    MAX_FRAME_PAYLOAD,
    FrameDecoder,
    Listener,
    Transport,
    encode_frame,
)

__all__ = ["FaultSpec", "FaultPlan", "ChaosListener", "ChaosTransport"]

_READ_CHUNK = 65536

#: Frame-level fault actions, in the order the plan's single uniform
#: draw is bucketed.  ``deliver`` is the remainder.
ACTIONS = ("reset", "truncate", "drop", "duplicate", "deliver")


@dataclass(frozen=True)
class FaultSpec:
    """Per-frame fault probabilities (independent uniform draw each).

    Rates are bucketed in declaration order — ``reset`` wins over
    ``truncate`` wins over ``drop`` wins over ``duplicate`` — and the
    remainder delivers cleanly.  ``delay_rate``/``delay_s`` are drawn
    separately and compose with any action (a delayed reset is a
    perfectly good network)."""

    reset_rate: float = 0.0
    truncate_rate: float = 0.0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_rate: float = 0.0
    delay_s: float = 0.002

    def __post_init__(self):
        total = (
            self.reset_rate
            + self.truncate_rate
            + self.drop_rate
            + self.duplicate_rate
        )
        if total > 1.0:
            raise ServiceError("fault rates must sum to <= 1.0")
        for name in (
            "reset_rate",
            "truncate_rate",
            "drop_rate",
            "duplicate_rate",
            "delay_rate",
        ):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ServiceError(f"{name} must be in [0, 1]")


class FaultPlan:
    """A seeded factory of per-connection fault schedules."""

    def __init__(self, spec: FaultSpec, *, seed: int = 0):
        self.spec = spec
        self.seed = seed

    def schedule(self, serial: int, direction: str = "") -> "FaultSchedule":
        """The deterministic schedule for one connection direction.

        Seeding on ``(seed, serial, direction)`` keeps every pump
        thread's draws independent of scheduler interleaving."""
        return FaultSchedule(
            self.spec, random.Random(f"{self.seed}:{serial}:{direction}")
        )


class FaultSchedule:
    """One direction's stream of per-frame decisions."""

    def __init__(self, spec: FaultSpec, rng: random.Random):
        self._spec = spec
        self._rng = rng

    def next_action(self) -> str:
        draw = self._rng.random()
        spec = self._spec
        for action, rate in (
            ("reset", spec.reset_rate),
            ("truncate", spec.truncate_rate),
            ("drop", spec.drop_rate),
            ("duplicate", spec.duplicate_rate),
        ):
            if draw < rate:
                return action
            draw -= rate
        return "deliver"

    def next_delay(self) -> float:
        """Seconds to stall before acting on this frame (0 = none)."""
        if self._spec.delay_rate and self._rng.random() < self._spec.delay_rate:
            return self._spec.delay_s
        return 0.0

    def truncate_point(self, frame_bytes: bytes) -> int:
        """How many bytes of the encoded frame to leak before closing.

        Always strictly inside the frame (at least 1 byte short), so
        the victim's decoder is guaranteed a mid-frame stream end —
        the fault this action exists to stage."""
        return self._rng.randrange(0, len(frame_bytes) - 1) if len(frame_bytes) > 1 else 0


class ChaosListener(Listener):
    """Frame-aware faulting TCP proxy in front of a real listener.

    Clients dial :attr:`address`; each accepted connection gets its own
    upstream connection to ``upstream`` and two pump threads (one per
    direction), each with its own deterministic
    :class:`FaultSchedule`.  A ``reset``/``truncate`` action tears down
    *both* sockets of that proxied connection — exactly what a NAT
    timeout or a mid-datagram line cut does to TCP — after which a
    reconnecting client is expected to dial again (reaching a fresh
    proxied connection with the next serial's schedule).
    """

    def __init__(
        self,
        upstream: tuple[str, int],
        plan: FaultPlan,
        *,
        host: str = "127.0.0.1",
        max_payload: int = MAX_FRAME_PAYLOAD,
    ):
        self._upstream = (str(upstream[0]), int(upstream[1]))
        self._plan = plan
        self._max_payload = max_payload
        self._closed = False
        self._serial = 0
        self._serial_lock = threading.Lock()
        self._conns: list[socket_module.socket] = []
        self._listen = socket_module.socket(
            socket_module.AF_INET, socket_module.SOCK_STREAM
        )
        self._listen.setsockopt(
            socket_module.SOL_SOCKET, socket_module.SO_REUSEADDR, 1
        )
        self._listen.bind((host, 0))
        self._listen.listen(128)
        self._address = self._listen.getsockname()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="p2drm-chaos-accept", daemon=True
        )
        self._accept_thread.start()

    @property
    def address(self) -> tuple[str, int]:
        return (self._address[0], self._address[1])

    @property
    def connections_accepted(self) -> int:
        """How many client connections the proxy has seen (each one is
        a reconnect after the first)."""
        with self._serial_lock:
            return self._serial

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            # shutdown() wakes a concurrently blocked accept();
            # close() alone does not on Linux.
            self._listen.shutdown(socket_module.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listen.close()
        except OSError:
            pass
        with self._serial_lock:
            conns = list(self._conns)
        for sock in conns:
            _hard_close(sock)
        self._accept_thread.join(timeout=10)

    def __enter__(self) -> "ChaosListener":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- proxy machinery ---------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                client, _addr = self._listen.accept()
            except OSError:
                return  # listener closed
            with self._serial_lock:
                serial = self._serial
                self._serial += 1
            try:
                server = socket_module.create_connection(
                    self._upstream, timeout=30
                )
            except OSError:
                _hard_close(client)
                continue
            for sock in (client, server):
                sock.setsockopt(
                    socket_module.IPPROTO_TCP, socket_module.TCP_NODELAY, 1
                )
            with self._serial_lock:
                self._conns.extend((client, server))
            for source, sink, direction in (
                (client, server, "c2s"),
                (server, client, "s2c"),
            ):
                threading.Thread(
                    target=self._pump,
                    args=(
                        source,
                        sink,
                        self._plan.schedule(serial, direction),
                        client,
                        server,
                    ),
                    name=f"p2drm-chaos-{serial}-{direction}",
                    daemon=True,
                ).start()

    def _pump(self, source, sink, schedule: FaultSchedule, client, server) -> None:
        """Forward frames one way, applying the schedule per frame."""
        decoder = FrameDecoder(max_payload=self._max_payload)
        try:
            while True:
                data = source.recv(_READ_CHUNK)
                if not data:
                    # Clean upstream goodbye: mirror it (shutdown lets
                    # in-flight opposite-direction bytes finish).
                    try:
                        sink.shutdown(socket_module.SHUT_WR)
                    except OSError:
                        pass
                    return
                for frame in decoder.feed(data):
                    delay = schedule.next_delay()
                    if delay:
                        time.sleep(delay)
                    action = schedule.next_action()
                    encoded = encode_frame(
                        frame.type,
                        frame.request_id,
                        frame.payload,
                        max_payload=self._max_payload,
                    )
                    if action == "drop":
                        continue
                    if action == "reset":
                        _hard_close(client)
                        _hard_close(server)
                        return
                    if action == "truncate":
                        point = schedule.truncate_point(encoded)
                        if point:
                            try:
                                sink.sendall(encoded[:point])
                            except OSError:
                                pass
                        _hard_close(client)
                        _hard_close(server)
                        return
                    sink.sendall(encoded)
                    if action == "duplicate":
                        sink.sendall(encoded)
        except OSError:
            # Either side vanished (often our own twin pump's reset);
            # nothing to mirror — both sockets are already going down.
            _hard_close(client)
            _hard_close(server)
        except Exception:
            # A framing violation from a hostile peer: drop the pair.
            _hard_close(client)
            _hard_close(server)


def _hard_close(sock: socket_module.socket) -> None:
    """Abortive close: RST if possible, never raising."""
    try:
        sock.setsockopt(
            socket_module.SOL_SOCKET,
            socket_module.SO_LINGER,
            # l_onoff=1, l_linger=0 → RST on close.
            b"\x01\x00\x00\x00\x00\x00\x00\x00",
        )
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass


class ChaosTransport(Transport):
    """Faulting wrapper over any in-process transport.

    The queue path has no wire to cut, so faults act on the call
    surface instead — the three failures a lossy RPC layer can hand a
    client:

    - ``lost_request``: raise a retryable error *before* the inner
      submit.  No side effect happened; a retry is trivially safe.
    - ``lost_response``: perform the inner submit, then raise the same
      retryable error.  The side effect **stands** — exactly the case
      the idempotent-replay cache must absorb on retry.
    - ``duplicate``: submit twice; the duplicate's ticket is gathered
      and discarded internally, modelling at-least-once delivery.

    Rates are drawn per submit from one seeded schedule (the transport
    is used single-threaded, like every other transport here).
    """

    def __init__(
        self,
        inner: Transport,
        plan: FaultPlan,
        *,
        lost_request_rate: float = 0.0,
        lost_response_rate: float = 0.0,
        duplicate_rate: float = 0.0,
    ):
        self._inner = inner
        self._rng = random.Random(f"{plan.seed}:transport")
        self._lost_request_rate = lost_request_rate
        self._lost_response_rate = lost_response_rate
        self._duplicate_rate = duplicate_rate
        self._extra_tickets: list[int] = []

    def submit(
        self, request, *, worker: int | None = None, nonce: bytes | None = None
    ) -> int:
        draw = self._rng.random()
        if draw < self._lost_request_rate:
            raise ServiceError("chaos: request lost before the server")
        draw -= self._lost_request_rate
        # Older transports may not speak the nonce kwarg; only pass it
        # through when the caller actually set one.
        if nonce is None:
            ticket = self._inner.submit(request, worker=worker)
        else:
            ticket = self._inner.submit(request, worker=worker, nonce=nonce)
        if draw < self._lost_response_rate:
            self._extra_tickets.append(ticket)
            raise ServiceError("chaos: response lost after the server")
        draw -= self._lost_response_rate
        if draw < self._duplicate_rate:
            if nonce is None:
                self._extra_tickets.append(self._inner.submit(request, worker=worker))
            else:
                self._extra_tickets.append(
                    self._inner.submit(request, worker=worker, nonce=nonce)
                )
        return ticket

    def gather(self, tickets: list[int]) -> list:
        extras, self._extra_tickets = self._extra_tickets, []
        results = self._inner.gather(list(tickets) + extras)
        return results[: len(tickets)]

    def close(self) -> None:
        self._inner.close()
