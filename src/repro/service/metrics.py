"""Dependency-free metrics for the service layer: what the operator
*may* see.

The paper's E10 comparison is about what running the marketplace
forces the operator to know; this module is the positive half of the
answer — **aggregate** counters, gauges and fixed-bucket latency
histograms (requests per op and outcome, queue depth, shed rate,
p50/p99/p999) carrying no per-pseudonym labels, so observability never
becomes a linkage side channel (see ``docs/metrics.md`` for the
reference table and ``docs/runbook.md`` for alert thresholds).

Three metric kinds, all thread-safe behind one registry lock:

- :class:`Counter` — monotonically increasing (``inc``);
- :class:`Gauge` — a settable level (``set`` / ``inc`` / ``dec``; label
  sets can be ``remove``\\d when their object — a connection — goes
  away);
- :class:`Histogram` — fixed bucket bounds chosen at registration;
  ``observe`` is one bisect + three adds, and quantiles (p50/p99/p999)
  are estimated by linear interpolation inside the owning bucket, the
  same estimate PromQL's ``histogram_quantile`` computes.

The registry renders two ways: :meth:`MetricsRegistry.render_text`
emits the Prometheus text exposition format (version 0.0.4 — what the
:class:`~repro.service.netserver.NetServer` metrics endpoint serves),
and :meth:`MetricsRegistry.snapshot` emits a codec-friendly structure
(floats as ``repr`` strings — the canonical codec has no float type)
for the ``metrics`` control frame.

Every metric the service stack exports is declared up front in
:data:`SERVICE_METRIC_SPECS` and instantiated by
:func:`build_service_registry`, so the registry's contents are a
static, documentable surface — ``tools/check_docs.py`` fails CI when
``docs/metrics.md`` and this list drift apart.
"""

from __future__ import annotations

import bisect
import re
import threading
from dataclasses import dataclass

from ..errors import ParameterError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricSpec",
    "SERVICE_METRIC_SPECS",
    "DEFAULT_LATENCY_BUCKETS",
    "build_service_registry",
    "ensure_service_metrics",
]

#: Default latency buckets (seconds): log-ish spacing from 1 ms to 10 s,
#: matched to the service layer's observed range — worker batch waits
#: sit around ``max_wait`` (20 ms), loaded-CI crypto in the hundreds of
#: milliseconds.  13 buckets keeps a histogram cheap to ship and wide
#: enough that p999 interpolation has a bucket to land in.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_label_value(value: str) -> str:
    """Prometheus label-value escaping: backslash, quote, newline."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def format_value(value: float) -> str:
    """A number in exposition form: integral floats lose the ``.0``
    (Prometheus accepts both; the short form diffs cleanly)."""
    if isinstance(value, bool):  # bools are ints; be explicit anyway
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class Metric:
    """Base: a named family of samples keyed by label values."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, label_names: tuple[str, ...], lock):
        if not _NAME_RE.match(name):
            raise ParameterError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise ParameterError(f"invalid label name {label!r}")
        self.name = name
        self.help = help_text
        self.label_names = tuple(label_names)
        self._lock = lock
        #: label-value tuple -> sample state (kind-specific).
        self._children: dict[tuple[str, ...], object] = {}

    def _key(self, labels: dict) -> tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ParameterError(
                f"{self.name} takes labels {self.label_names}, got {tuple(labels)}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def _label_suffix(self, key: tuple[str, ...], extra: str = "") -> str:
        pairs = [
            f'{name}="{_escape_label_value(value)}"'
            for name, value in zip(self.label_names, key)
        ]
        if extra:
            pairs.append(extra)
        return "{" + ",".join(pairs) + "}" if pairs else ""

    def samples(self) -> list[tuple[dict, object]]:
        """``(labels_dict, state)`` snapshot pairs, insertion-ordered."""
        with self._lock:
            return [
                (dict(zip(self.label_names, key)), state)
                for key, state in self._children.items()
            ]


class Counter(Metric):
    """Monotonically increasing count (requests, errors, sheds)."""

    kind = "counter"

    def __init__(self, name, help_text, label_names, lock):
        super().__init__(name, help_text, label_names, lock)
        if not self.label_names:
            self._children[()] = 0.0

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ParameterError("counters only go up")
        key = self._key(labels)
        with self._lock:
            self._children[key] = self._children.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return float(self._children.get(self._key(labels), 0.0))

    def render(self) -> list[str]:
        with self._lock:
            return [
                f"{self.name}{self._label_suffix(key)} {format_value(value)}"
                for key, value in self._children.items()
            ]


class Gauge(Metric):
    """A level that goes up and down (queue depth, open connections)."""

    kind = "gauge"

    def __init__(self, name, help_text, label_names, lock):
        super().__init__(name, help_text, label_names, lock)
        if not self.label_names:
            self._children[()] = 0.0

    def set(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._children[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._children[key] = self._children.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def remove(self, **labels) -> None:
        """Drop one label set (a closed connection must not linger as a
        stale zero forever)."""
        key = self._key(labels)
        with self._lock:
            self._children.pop(key, None)

    def value(self, **labels) -> float:
        with self._lock:
            return float(self._children.get(self._key(labels), 0.0))

    def render(self) -> list[str]:
        with self._lock:
            return [
                f"{self.name}{self._label_suffix(key)} {format_value(value)}"
                for key, value in self._children.items()
            ]


class _HistogramState:
    """Per-label-set histogram state: bucket counts, sum, count."""

    __slots__ = ("bucket_counts", "total", "count", "exemplars")

    def __init__(self, bucket_count: int):
        self.bucket_counts = [0] * bucket_count  # +Inf bucket included
        self.total = 0.0
        self.count = 0
        #: bucket index -> (value, trace id hex); written only by the
        #: tracing keep-hook, last writer wins per bucket.  Deliberately
        #: absent from ``render``/``snapshot`` — the text exposition and
        #: the codec snapshot are frozen shapes; exemplars surface on
        #: the ``GET /traces`` JSON endpoint instead.
        self.exemplars: dict[int, tuple[float, str]] = {}


class Histogram(Metric):
    """Fixed-bucket distribution with interpolated quantile estimates."""

    kind = "histogram"

    def __init__(self, name, help_text, label_names, lock, buckets):
        super().__init__(name, help_text, label_names, lock)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ParameterError("histogram buckets must be sorted and distinct")
        self.buckets = bounds

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            state = self._children.get(key)
            if state is None:
                state = self._children[key] = _HistogramState(len(self.buckets) + 1)
            state.bucket_counts[index] += 1
            state.total += value
            state.count += 1

    def annotate_exemplar(self, value: float, exemplar: str, **labels) -> None:
        """Attach an exemplar (a kept trace id) to ``value``'s bucket.

        A no-op for label sets that never observed anything: an
        exemplar without a distribution would render a phantom series.
        """
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            state = self._children.get(self._key(labels))
            if state is not None:
                state.exemplars[index] = (float(value), str(exemplar))

    def exemplars(self, **labels) -> dict[str, dict]:
        """Exemplars by bucket upper bound (``le`` string form)."""
        with self._lock:
            state = self._children.get(self._key(labels))
            items = dict(state.exemplars) if state is not None else {}
        out: dict[str, dict] = {}
        for index, (value, trace_hex) in sorted(items.items()):
            le = ("+Inf" if index >= len(self.buckets)
                  else format_value(self.buckets[index]))
            out[le] = {"value": value, "trace": trace_hex}
        return out

    def count(self, **labels) -> int:
        with self._lock:
            state = self._children.get(self._key(labels))
            return 0 if state is None else state.count

    def sum(self, **labels) -> float:
        with self._lock:
            state = self._children.get(self._key(labels))
            return 0.0 if state is None else state.total

    def quantile(self, q: float, **labels) -> float | None:
        """Estimated ``q``-quantile (0 < q < 1) by linear interpolation
        inside the owning bucket — the ``histogram_quantile`` estimate.
        ``None`` with no observations; observations in the +Inf bucket
        clamp to the largest finite bound (the estimate cannot know how
        far past the last bucket they landed)."""
        if not 0.0 < q < 1.0:
            raise ParameterError(f"quantile {q} outside (0, 1)")
        with self._lock:
            state = self._children.get(self._key(labels))
            if state is None or state.count == 0:
                return None
            counts = list(state.bucket_counts)
            total = state.count
        rank = q * total
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                if index >= len(self.buckets):
                    return self.buckets[-1]
                lower = 0.0 if index == 0 else self.buckets[index - 1]
                upper = self.buckets[index]
                fraction = (rank - cumulative) / bucket_count
                return lower + (upper - lower) * fraction
            cumulative += bucket_count
        return self.buckets[-1]  # pragma: no cover - rank <= total always hits

    def render(self) -> list[str]:
        lines: list[str] = []
        with self._lock:
            snapshot = [
                (key, list(state.bucket_counts), state.total, state.count)
                for key, state in self._children.items()
            ]
        for key, counts, total, count in snapshot:
            cumulative = 0
            for bound, bucket_count in zip(self.buckets, counts):
                cumulative += bucket_count
                suffix = self._label_suffix(key, f'le="{format_value(bound)}"')
                lines.append(f"{self.name}_bucket{suffix} {cumulative}")
            cumulative += counts[-1]
            suffix = self._label_suffix(key, 'le="+Inf"')
            lines.append(f"{self.name}_bucket{suffix} {cumulative}")
            lines.append(
                f"{self.name}_sum{self._label_suffix(key)} {format_value(total)}"
            )
            lines.append(f"{self.name}_count{self._label_suffix(key)} {count}")
        return lines


class MetricsRegistry:
    """All metrics of one service stack, renderable as one page.

    Get-or-create constructors (:meth:`counter` / :meth:`gauge` /
    :meth:`histogram`) make registration idempotent — the pool and the
    socket server share one registry without coordinating — but a
    re-registration that *disagrees* (kind or label names) is a loud
    :class:`~repro.errors.ParameterError`, never a silent second
    metric under the same name.
    """

    def __init__(self):
        self._lock = threading.RLock()
        self._metrics: dict[str, Metric] = {}

    def _get_or_create(self, cls, name, help_text, labels, **kwargs) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.label_names != tuple(labels):
                    raise ParameterError(
                        f"metric {name!r} already registered as"
                        f" {existing.kind}{existing.label_names}"
                    )
                return existing
            metric = cls(name, help_text, tuple(labels), self._lock, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "", labels=()) -> Counter:
        return self._get_or_create(Counter, name, help_text, labels)

    def gauge(self, name: str, help_text: str = "", labels=()) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labels)

    def histogram(
        self, name: str, help_text: str = "", labels=(),
        buckets=DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help_text, labels, buckets=buckets
        )

    def get(self, name: str) -> Metric:
        with self._lock:
            try:
                return self._metrics[name]
            except KeyError:
                raise ParameterError(f"no metric named {name!r}") from None

    def names(self) -> list[str]:
        with self._lock:
            return list(self._metrics)

    def render_text(self) -> str:
        """The Prometheus text exposition (format version 0.0.4).

        Every registered metric appears with its ``# HELP`` / ``# TYPE``
        header even before its first labeled sample, so a scrape (or
        the docs cross-check) always sees the full declared surface.
        """
        lines: list[str] = []
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            help_text = metric.help.replace("\\", "\\\\").replace("\n", "\\n")
            lines.append(f"# HELP {metric.name} {help_text}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict:
        """A codec-encodable structure for the metrics control frame.

        Numeric values cross as ``repr`` strings (the canonical codec
        deliberately has no float type); histogram samples carry their
        cumulative ``buckets`` as ``[bound, count]`` string pairs plus
        ``sum``/``count``, mirroring the exposition exactly.
        """
        out: dict = {}
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            samples: list[dict] = []
            for labels, state in metric.samples():
                if isinstance(metric, Histogram):
                    cumulative = 0
                    buckets: list[list[str]] = []
                    for bound, bucket_count in zip(
                        metric.buckets, state.bucket_counts
                    ):
                        cumulative += bucket_count
                        buckets.append([format_value(bound), str(cumulative)])
                    buckets.append(["+Inf", str(cumulative + state.bucket_counts[-1])])
                    samples.append(
                        {
                            "labels": labels,
                            "buckets": buckets,
                            "sum": format_value(state.total),
                            "count": str(state.count),
                        }
                    )
                else:
                    samples.append(
                        {"labels": labels, "value": format_value(state)}
                    )
            out[metric.name] = {
                "kind": metric.kind,
                "help": metric.help,
                "samples": samples,
            }
        return out


# -- the service stack's declared metric surface ------------------------------


@dataclass(frozen=True)
class MetricSpec:
    """One declared metric: the unit the docs cross-check keys on."""

    name: str
    kind: str
    help: str
    labels: tuple[str, ...] = ()
    buckets: tuple[float, ...] | None = None


#: Every metric the pool and the socket server export.  ``docs/
#: metrics.md`` documents exactly this list (enforced by
#: ``tools/check_docs.py``); adding a metric means adding it in both
#: places or failing CI.
SERVICE_METRIC_SPECS: tuple[MetricSpec, ...] = (
    MetricSpec(
        "p2drm_requests_total",
        "counter",
        "Requests submitted to the worker pool by op and outcome"
        " (ok / error / shed / abandoned).",
        ("op", "outcome"),
    ),
    MetricSpec(
        "p2drm_errors_total",
        "counter",
        "Error responses by op and exception type.",
        ("op", "type"),
    ),
    MetricSpec(
        "p2drm_shed_total",
        "counter",
        "Requests refused with OverloadedError, by op and which ceiling"
        " shed them (pool / worker / server).",
        ("op", "reason"),
    ),
    MetricSpec(
        "p2drm_request_latency_seconds",
        "histogram",
        "Submit-to-response latency through the pool (queue wait"
        " included), per op.",
        ("op",),
        DEFAULT_LATENCY_BUCKETS,
    ),
    MetricSpec(
        "p2drm_queue_depth",
        "gauge",
        "Outstanding requests per worker queue (shard-affine).",
        ("worker",),
    ),
    MetricSpec(
        "p2drm_inflight_requests",
        "gauge",
        "Outstanding requests pool-wide (submitted, not yet answered).",
    ),
    MetricSpec(
        "p2drm_workers_alive",
        "gauge",
        "Worker processes currently alive.",
    ),
    MetricSpec(
        "p2drm_net_connections",
        "gauge",
        "Open client connections on the socket server.",
    ),
    MetricSpec(
        "p2drm_net_connection_inflight",
        "gauge",
        "In-flight requests per open connection (label set removed on"
        " disconnect).",
        ("conn",),
    ),
    MetricSpec(
        "p2drm_net_frames_total",
        "counter",
        "Frames handled by the socket server, by frame type and"
        " direction (in / out).",
        ("type", "direction"),
    ),
    MetricSpec(
        "p2drm_ledger_2pc_total",
        "counter",
        "Deposit-intent 2PC transitions by phase (prepare / commit /"
        " abort), refreshed by delta from the durable intent rows on"
        " the shard files — intent rows are never deleted, so the"
        " counts survive worker crashes and pool restarts.",
        ("phase",),
    ),
    MetricSpec(
        "p2drm_ledger_intents",
        "gauge",
        "Deposit-intent records currently on the shard files, by state"
        " (pending / committed / aborted).  Pending intents resolve in"
        " milliseconds; a sustained nonzero pending count is the"
        " LedgerIntentStuck alert.",
        ("state",),
    ),
    MetricSpec(
        "p2drm_ledger_latency_seconds",
        "histogram",
        "Gateway-side ledger operation latency, per op (balance /"
        " statement / recover / refresh).",
        ("op",),
        DEFAULT_LATENCY_BUCKETS,
    ),
    MetricSpec(
        "p2drm_reconnects_total",
        "counter",
        "Successful client re-dials after a connection failure"
        " (client-side registry; a sustained climb means the network"
        " or the server is flapping).",
    ),
    MetricSpec(
        "p2drm_retries_total",
        "counter",
        "Client request retries, per op and per reason (the bare"
        " error class that made the attempt retryable).",
        ("op", "reason"),
    ),
    MetricSpec(
        "p2drm_replay_hits_total",
        "counter",
        "Retries answered from the idempotent-replay cache with the"
        " original receipt instead of re-execution (front-door hits;"
        " worker-side hits surface as fast deposits, not here).",
    ),
    MetricSpec(
        "p2drm_worker_warmup_seconds",
        "histogram",
        "Per-worker fastexp warmup cost, by how the tables were"
        " obtained: mode=build (computed from scratch), attach"
        " (deserialized lazily from the gateway's shared-memory"
        " segment) or cow (inherited by fork, zero work).",
        ("mode",),
        DEFAULT_LATENCY_BUCKETS,
    ),
    MetricSpec(
        "p2drm_frames_zero_copy_total",
        "counter",
        "Frames whose payload was handed to the server as a view into"
        " the read buffer (the decoder's zero-copy fast path) instead"
        " of a copied slice; compare against p2drm_net_frames_total to"
        " see how often frames straddle reads.",
    ),
)


def ensure_service_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Register every declared service metric on ``registry``
    (idempotent — the get-or-create constructors make a second pass a
    no-op), and return it."""
    for spec in SERVICE_METRIC_SPECS:
        if spec.kind == "counter":
            registry.counter(spec.name, spec.help, spec.labels)
        elif spec.kind == "gauge":
            registry.gauge(spec.name, spec.help, spec.labels)
        elif spec.kind == "histogram":
            registry.histogram(
                spec.name, spec.help, spec.labels,
                buckets=spec.buckets or DEFAULT_LATENCY_BUCKETS,
            )
        else:  # pragma: no cover - specs are static
            raise ParameterError(f"unknown metric kind {spec.kind!r}")
    return registry


def build_service_registry() -> MetricsRegistry:
    """A registry pre-populated with every declared service metric, so
    the exposition covers the full surface from the first scrape."""
    return ensure_service_metrics(MetricsRegistry())
