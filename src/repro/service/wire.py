"""Wire format for the service layer: every request and response as
canonical bytes.

The protocol dataclasses in :mod:`repro.core.messages` already know
their codec dict form (``as_dict``/``from_dict``); this module wraps
them in a type-tagged envelope so a byte string is self-describing —
a gateway can route it and a worker can decode it without out-of-band
context.  The envelope rides the same canonical codec the signatures
use, so encoding is deterministic: one object, one byte string,
``decode(encode(x)) == x`` byte-for-byte.

Errors are first-class wire citizens.  A worker cannot raise across a
process boundary, so every exception the desks produce is encoded with
its type, message and evidence payload (a
:class:`~repro.core.messages.MisuseEvidence` survives the trip intact
— the TTP needs it verbatim), and the gateway re-raises a faithful
reconstruction on the caller's side.
"""

from __future__ import annotations

from .. import codec
from ..core.licenses import AnonymousLicense, PersonalLicense
from ..core.messages import (
    DepositRequest,
    ExchangeRequest,
    MisuseEvidence,
    PurchaseRequest,
    RedeemRequest,
)
from ..errors import (
    CodecError,
    DoubleRedemptionError,
    DoubleSpendError,
    ReproError,
    RightsDenied,
)

# -- request envelopes -------------------------------------------------------

KIND_SELL = "sell"
KIND_REDEEM = "redeem"
KIND_EXCHANGE = "exchange"
KIND_DEPOSIT = "deposit"

_REQUEST_WHAT = "service-request"
_RESPONSE_WHAT = "service-response"

_REQUEST_TYPES: dict[str, type] = {
    KIND_SELL: PurchaseRequest,
    KIND_REDEEM: RedeemRequest,
    KIND_EXCHANGE: ExchangeRequest,
    KIND_DEPOSIT: DepositRequest,
}
_KIND_OF_TYPE = {cls: kind for kind, cls in _REQUEST_TYPES.items()}


def request_kind(request) -> str:
    """The wire kind for a request object (routing key at the gateway)."""
    try:
        return _KIND_OF_TYPE[type(request)]
    except KeyError:
        raise CodecError(
            f"not a service request: {type(request).__name__}"
        ) from None


def encode_request(request) -> bytes:
    """Self-describing canonical bytes for any protocol request."""
    return codec.encode(
        {
            "what": _REQUEST_WHAT,
            "kind": request_kind(request),
            "body": request.as_dict(),
        }
    )


def decode_request(data: bytes):
    """Inverse of :func:`encode_request`; returns the typed dataclass."""
    envelope = codec.decode(data)
    if not isinstance(envelope, dict) or envelope.get("what") != _REQUEST_WHAT:
        raise CodecError("not a service request envelope")
    request_type = _REQUEST_TYPES.get(envelope.get("kind"))
    if request_type is None:
        raise CodecError(f"unknown request kind {envelope.get('kind')!r}")
    return request_type.from_dict(envelope["body"])


# -- response envelopes ------------------------------------------------------

RESPONSE_PERSONAL = "personal-license"
RESPONSE_ANONYMOUS = "anonymous-license"
RESPONSE_RECEIPT = "deposit-receipt"
RESPONSE_ERROR = "error"


def encode_response(result) -> bytes:
    """Canonical bytes for a desk outcome — a licence, a deposit
    receipt (``{"account", "credited"}`` dict), or an exception."""
    if isinstance(result, PersonalLicense):
        kind, body = RESPONSE_PERSONAL, result.as_dict()
    elif isinstance(result, AnonymousLicense):
        kind, body = RESPONSE_ANONYMOUS, result.as_dict()
    elif isinstance(result, BaseException):
        kind, body = RESPONSE_ERROR, _encode_error(result)
    elif isinstance(result, dict):
        kind, body = RESPONSE_RECEIPT, result
    else:
        raise CodecError(f"not a service response: {type(result).__name__}")
    return codec.encode({"what": _RESPONSE_WHAT, "kind": kind, "body": body})


def decode_response(data: bytes):
    """Inverse of :func:`encode_response`.

    Errors come back as exception *instances* (not raised): batch
    callers keep queue semantics, where each slot is a result or the
    exception that rejected it.
    """
    envelope = codec.decode(data)
    if not isinstance(envelope, dict) or envelope.get("what") != _RESPONSE_WHAT:
        raise CodecError("not a service response envelope")
    kind = envelope.get("kind")
    body = envelope["body"]
    if kind == RESPONSE_PERSONAL:
        return PersonalLicense.from_dict(body)
    if kind == RESPONSE_ANONYMOUS:
        return AnonymousLicense.from_dict(body)
    if kind == RESPONSE_RECEIPT:
        return body
    if kind == RESPONSE_ERROR:
        return _decode_error(body)
    raise CodecError(f"unknown response kind {kind!r}")


# -- error marshalling -------------------------------------------------------


def _error_registry() -> dict[str, type]:
    """Every concrete exception type the desks can raise, by name."""
    from .. import errors as errors_module

    registry: dict[str, type] = {}
    for name in dir(errors_module):
        candidate = getattr(errors_module, name)
        if isinstance(candidate, type) and issubclass(candidate, ReproError):
            registry[name] = candidate
    return registry


_ERRORS = _error_registry()


def _encode_error(error: BaseException) -> dict:
    body: dict = {"type": type(error).__name__, "message": str(error)}
    if isinstance(error, DoubleSpendError):
        body["coin_id"] = error.coin_id
    if isinstance(error, DoubleRedemptionError):
        body["token_id"] = error.token_id
        evidence = getattr(error, "evidence", None)
        if evidence is not None:
            body["evidence"] = codec.encode(evidence.as_dict())
    if isinstance(error, RightsDenied):
        body["action"] = error.action
        body["reason"] = error.reason
    return body


def _decode_error(body: dict) -> ReproError:
    error_type = _ERRORS.get(body.get("type", ""))
    if error_type is DoubleSpendError:
        return DoubleSpendError(bytes(body["coin_id"]))
    if error_type is DoubleRedemptionError:
        error = DoubleRedemptionError(bytes(body["token_id"]))
        if "evidence" in body:
            error.evidence = MisuseEvidence.from_dict(
                codec.decode(bytes(body["evidence"]))
            )
        return error
    if error_type is RightsDenied:
        return RightsDenied(body["action"], body["reason"])
    if error_type is None:
        # Version skew: an unknown type still surfaces as a ReproError
        # carrying its original name, never a silent success.
        return ReproError(f"{body.get('type')}: {body.get('message')}")
    return error_type(body.get("message", ""))
