"""Wire format for the service layer: every request and response as
canonical bytes.

The protocol dataclasses in :mod:`repro.core.messages` already know
their codec dict form (``as_dict``/``from_dict``); this module wraps
them in a type-tagged envelope so a byte string is self-describing —
a gateway can route it and a worker can decode it without out-of-band
context.  The envelope rides the same canonical codec the signatures
use, so encoding is deterministic: one object, one byte string,
``decode(encode(x)) == x`` byte-for-byte.

Errors are first-class wire citizens.  A worker cannot raise across a
process boundary, so every exception the desks produce is encoded with
its type, message and evidence payload (a
:class:`~repro.core.messages.MisuseEvidence` survives the trip intact
— the TTP needs it verbatim), and the gateway re-raises a faithful
reconstruction on the caller's side.
"""

from __future__ import annotations

from .. import codec
from ..core.licenses import AnonymousLicense, PersonalLicense
from ..core.messages import (
    DepositRequest,
    ExchangeRequest,
    MisuseEvidence,
    PurchaseRequest,
    RedeemRequest,
    WithdrawRequest,
)
from ..errors import (
    CodecError,
    DoubleRedemptionError,
    DoubleSpendError,
    OverloadedError,
    ReproError,
    RightsDenied,
)

#: What the decoders and peeks accept: the hot path hands them
#: ``memoryview`` slices straight out of the frame decoder, and the
#: canonical codec reads through any bytes-like object.
Buffer = bytes | bytearray | memoryview

# -- request envelopes -------------------------------------------------------

KIND_SELL = "sell"
KIND_REDEEM = "redeem"
KIND_EXCHANGE = "exchange"
KIND_DEPOSIT = "deposit"
KIND_WITHDRAW = "withdraw"

_REQUEST_WHAT = "service-request"
_RESPONSE_WHAT = "service-response"

_REQUEST_TYPES: dict[str, type] = {
    KIND_SELL: PurchaseRequest,
    KIND_REDEEM: RedeemRequest,
    KIND_EXCHANGE: ExchangeRequest,
    KIND_DEPOSIT: DepositRequest,
    KIND_WITHDRAW: WithdrawRequest,
}
_KIND_OF_TYPE = {cls: kind for kind, cls in _REQUEST_TYPES.items()}


def request_kind(request) -> str:
    """The wire kind for a request object (routing key at the gateway)."""
    try:
        return _KIND_OF_TYPE[type(request)]
    except KeyError:
        raise CodecError(
            f"not a service request: {type(request).__name__}"
        ) from None


#: Length of an idempotency nonce (bytes).  16 random bytes make
#: accidental collision between two *distinct* requests negligible;
#: the nonce is a client-chosen retry-correlation key, never a secret.
NONCE_BYTES = 16


def encode_request(request, trace=None, nonce: bytes | None = None) -> bytes:
    """Self-describing canonical bytes for any protocol request.

    ``trace`` (a :class:`~repro.service.tracing.TraceContext`) adds an
    optional ``meta`` key carrying the caller's trace/span ids so the
    worker can parent its spans to the client's root span.  ``nonce``
    rides the same ``meta`` dict: a client-chosen idempotency key the
    server's replay cache dedupes retries on (see
    :mod:`repro.service.replay`) — a resent envelope carrying the same
    nonce byte-identically is answered with the original response
    instead of being applied twice.  Decoders ignore ``meta`` entirely
    — the typed request round-trips unchanged — and *responses* never
    carry it, which preserves the byte-identity guarantee between the
    queue, TCP, and in-process arms.
    """
    envelope = {
        "what": _REQUEST_WHAT,
        "kind": request_kind(request),
        "body": request.as_dict(),
    }
    meta: dict = {}
    if trace is not None:
        meta["trace"] = trace.trace_id
        meta["span"] = trace.span_id
    if nonce is not None:
        if len(nonce) != NONCE_BYTES:
            raise CodecError(
                f"idempotency nonce must be {NONCE_BYTES} bytes,"
                f" got {len(nonce)}"
            )
        meta["nonce"] = bytes(nonce)
    if meta:
        envelope["meta"] = meta
    return codec.encode(envelope)


def decode_request(data: Buffer):
    """Inverse of :func:`encode_request`; returns the typed dataclass.

    Strictly :class:`~repro.errors.CodecError` on any malformed input:
    a well-formed envelope carrying a garbage body (missing fields,
    wrong types) must not leak a raw ``KeyError``/``TypeError`` — the
    network path answers peers from the exception type, and only
    ``ReproError`` subclasses are wired for the trip back.
    """
    envelope = codec.decode(data)
    if not isinstance(envelope, dict) or envelope.get("what") != _REQUEST_WHAT:
        raise CodecError("not a service request envelope")
    kind = envelope.get("kind")
    request_type = _REQUEST_TYPES.get(kind)
    if request_type is None:
        raise CodecError(f"unknown request kind {kind!r}")
    try:
        return request_type.from_dict(envelope["body"])
    except ReproError:
        raise
    except Exception as exc:
        raise CodecError(f"malformed {kind} request body: {exc!r}") from exc


def peek_routing(data: Buffer) -> tuple[str, bytes]:
    """``(kind, affinity token)`` of an encoded request — without
    constructing the full typed request.

    The network gateway routes thousands of envelopes it never
    otherwise inspects (worker desks decode for themselves), so the
    peek reads just the affinity field from the decoded body dict:
    redeem and exchange tokens *are* raw fields; sells derive the
    certificate fingerprint through the same :class:`~repro.core.
    identity.Pseudonym` the full decode would build; deposits build
    one :class:`~repro.core.messages.Coin` so ``spent_token()`` keeps
    sole ownership of the exactly-once key formula.  Every token is
    byte-equal to what the typed request would yield, and any
    malformed shape raises :class:`~repro.errors.CodecError` (deeper
    garbage is the worker's decode to refuse).
    """
    envelope = codec.decode(data)
    if not isinstance(envelope, dict) or envelope.get("what") != _REQUEST_WHAT:
        raise CodecError("not a service request envelope")
    kind = envelope.get("kind")
    if kind not in _REQUEST_TYPES:
        raise CodecError(f"unknown request kind {kind!r}")
    try:
        body = envelope["body"]
        if kind == KIND_REDEEM:
            return kind, bytes(body["anon"]["id"])
        if kind == KIND_EXCHANGE:
            return kind, bytes(body["license"])
        if kind == KIND_SELL:
            from ..core.identity import Pseudonym

            return kind, Pseudonym.from_dict(body["cert"]["pseudonym"]).fingerprint
        if kind == KIND_WITHDRAW:
            # Withdrawals route by account: the debit serializes at the
            # account's home-shard write lock wherever it runs, so the
            # affinity is a cache-locality choice, not a correctness one.
            return kind, str(body["account"]).encode("utf-8")
        coins = body["coins"]
        if not coins:
            return kind, b"deposit"
        from ..core.messages import Coin

        return kind, Coin.from_dict(coins[0]).spent_token()
    except ReproError:
        raise
    except Exception as exc:
        raise CodecError(
            f"malformed {kind} request routing fields: {exc!r}"
        ) from exc


def peek_routing_token(data: Buffer) -> bytes:
    """The affinity token alone (see :func:`peek_routing`)."""
    return peek_routing(data)[1]


def peek_trace(data: Buffer):
    """The trace context embedded in an encoded request, or ``None``.

    Never raises: an envelope without ``meta`` (every pre-tracing
    client), or with a malformed one, is simply untraced.
    """
    from .tracing import SPAN_ID_BYTES, TRACE_ID_BYTES, TraceContext

    try:
        envelope = codec.decode(data)
        meta = envelope.get("meta")
        if not isinstance(meta, dict):
            return None
        trace_id = bytes(meta["trace"])
        span_id = bytes(meta["span"])
        if len(trace_id) != TRACE_ID_BYTES or len(span_id) != SPAN_ID_BYTES:
            return None
        return TraceContext(trace_id, span_id)
    except Exception:
        return None


def peek_nonce(data: Buffer) -> bytes | None:
    """The idempotency nonce embedded in an encoded request, or ``None``.

    Never raises: an envelope without ``meta`` (every pre-retry
    client), or with a malformed one, is simply not idempotent-keyed —
    it flows through the ordinary exactly-once gates instead.
    """
    try:
        envelope = codec.decode(data)
        meta = envelope.get("meta")
        if not isinstance(meta, dict):
            return None
        nonce = meta.get("nonce")
        if not isinstance(nonce, bytes) or len(nonce) != NONCE_BYTES:
            return None
        return nonce
    except Exception:
        return None


# -- response envelopes ------------------------------------------------------

RESPONSE_PERSONAL = "personal-license"
RESPONSE_ANONYMOUS = "anonymous-license"
RESPONSE_RECEIPT = "deposit-receipt"
RESPONSE_ERROR = "error"


def encode_response(result) -> bytes:
    """Canonical bytes for a desk outcome — a licence, a receipt dict
    (``{"account", "credited"}`` for deposits, ``{"account",
    "denomination", "signature"}`` for blind withdrawals), or an
    exception."""
    if isinstance(result, PersonalLicense):
        kind, body = RESPONSE_PERSONAL, result.as_dict()
    elif isinstance(result, AnonymousLicense):
        kind, body = RESPONSE_ANONYMOUS, result.as_dict()
    elif isinstance(result, BaseException):
        kind, body = RESPONSE_ERROR, _encode_error(result)
    elif isinstance(result, dict):
        kind, body = RESPONSE_RECEIPT, result
    else:
        raise CodecError(f"not a service response: {type(result).__name__}")
    return codec.encode({"what": _RESPONSE_WHAT, "kind": kind, "body": body})


def decode_response(data: Buffer):
    """Inverse of :func:`encode_response`.

    Errors come back as exception *instances* (not raised): batch
    callers keep queue semantics, where each slot is a result or the
    exception that rejected it.
    """
    envelope = codec.decode(data)
    if not isinstance(envelope, dict) or envelope.get("what") != _RESPONSE_WHAT:
        raise CodecError("not a service response envelope")
    kind = envelope.get("kind")
    if "body" not in envelope:
        raise CodecError("service response envelope missing body")
    body = envelope["body"]
    try:
        if kind == RESPONSE_PERSONAL:
            return PersonalLicense.from_dict(body)
        if kind == RESPONSE_ANONYMOUS:
            return AnonymousLicense.from_dict(body)
        if kind == RESPONSE_RECEIPT:
            return body
        if kind == RESPONSE_ERROR:
            return _decode_error(body)
    except ReproError:
        raise
    except Exception as exc:
        raise CodecError(f"malformed {kind} response body: {exc!r}") from exc
    raise CodecError(f"unknown response kind {kind!r}")


def peek_response_outcome(data: Buffer) -> tuple[str, str | None]:
    """``(outcome, error_type)`` of an encoded response, cheaply.

    The pool's metrics path classifies every response it parks without
    reconstructing licences: ``("ok", None)`` for results,
    ``("error", <type name>)`` for error envelopes.  Never raises —
    an unclassifiable payload (which a worker will not produce, but a
    counter must not crash the collector over) is ``("unknown",
    None)``.
    """
    try:
        envelope = codec.decode(data)
        kind = envelope.get("kind")
        if kind == RESPONSE_ERROR:
            return "error", str(envelope["body"].get("type"))
        if kind in (RESPONSE_PERSONAL, RESPONSE_ANONYMOUS, RESPONSE_RECEIPT):
            return "ok", None
        return "unknown", None
    except Exception:
        return "unknown", None


# -- error marshalling -------------------------------------------------------


def encode_error(error: BaseException) -> dict:
    """An exception as a codec-friendly dict body.

    The response envelopes use this internally; the network control
    channel reuses it so read-surface failures (a revoked licence in a
    non-revocation proof, say) cross the socket with the same fidelity
    as desk rejections.
    """
    return _encode_error(error)


def decode_error(body: dict) -> ReproError:
    """Inverse of :func:`encode_error`; returns the exception *instance*.

    Strict on untrusted shapes: an error body whose advertised type
    does not match its fields (a ``DoubleSpendError`` without its coin
    id, say) decodes to :class:`~repro.errors.CodecError` instead of
    leaking the shape mismatch as a raw ``KeyError``.
    """
    try:
        return _decode_error(body)
    except ReproError:
        raise
    except Exception as exc:
        raise CodecError(f"malformed error body: {exc!r}") from exc


def _error_registry() -> dict[str, type]:
    """Every concrete exception type the desks can raise, by name."""
    from .. import errors as errors_module

    registry: dict[str, type] = {}
    for name in dir(errors_module):
        candidate = getattr(errors_module, name)
        if isinstance(candidate, type) and issubclass(candidate, ReproError):
            registry[name] = candidate
    return registry


_ERRORS = _error_registry()


def _encode_error(error: BaseException) -> dict:
    body: dict = {"type": type(error).__name__, "message": str(error)}
    if isinstance(error, DoubleSpendError):
        body["coin_id"] = error.coin_id
    if isinstance(error, DoubleRedemptionError):
        body["token_id"] = error.token_id
        evidence = getattr(error, "evidence", None)
        if evidence is not None:
            body["evidence"] = codec.encode(evidence.as_dict())
    if isinstance(error, RightsDenied):
        body["action"] = error.action
        body["reason"] = error.reason
    if isinstance(error, OverloadedError):
        body["retry_after_ms"] = error.retry_after_ms
    return body


def _decode_error(body: dict) -> ReproError:
    error_type = _ERRORS.get(body.get("type", ""))
    if error_type is DoubleSpendError:
        return DoubleSpendError(bytes(body["coin_id"]))
    if error_type is DoubleRedemptionError:
        error = DoubleRedemptionError(bytes(body["token_id"]))
        if "evidence" in body:
            error.evidence = MisuseEvidence.from_dict(
                codec.decode(bytes(body["evidence"]))
            )
        return error
    if error_type is RightsDenied:
        return RightsDenied(body["action"], body["reason"])
    if error_type is OverloadedError:
        return OverloadedError(
            body.get("message", ""),
            retry_after_ms=int(body.get("retry_after_ms", 100)),
        )
    if error_type is None:
        # Version skew: an unknown type still surfaces as a ReproError
        # carrying its original name, never a silent success.
        return ReproError(f"{body.get('type')}: {body.get('message')}")
    return error_type(body.get("message", ""))
