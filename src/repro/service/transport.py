"""Pluggable transport: framing and the interfaces both paths share.

The service layer's messages are already canonical bytes
(:mod:`repro.service.wire`), but bytes on a stream socket have no
boundaries — this module adds the missing layer: a fixed 16-byte
header carrying magic, version, a frame-type tag, a caller-chosen
correlation id and the payload length::

    offset  size  field
    0       2     magic  b"P2"
    2       1     version (currently 1)
    3       1     frame type (FRAME_* constants)
    4       8     request id (big-endian; correlates responses to
                  requests so a connection can pipeline freely)
    12      4     payload length (big-endian)
    16      ...   payload (a wire.py envelope, or a control body)

Everything after the header is opaque to the framing layer: protocol
requests and responses cross as the *same* envelope bytes the
in-process queue path carries, which is what makes the two transports
byte-identical by construction.

:class:`FrameDecoder` is strict about untrusted input.  Bad magic, an
unknown version or frame type, and an oversized declared length raise
typed :class:`~repro.errors.WireError` subclasses — oversize is
rejected from the header alone, before a single payload byte is
buffered, so a hostile length field can never turn into a huge
allocation.  A stream ending mid-frame surfaces as
:class:`~repro.errors.TruncatedFrameError` via :meth:`FrameDecoder.
finish` instead of a silent hang.

:class:`Transport` and :class:`Listener` are the seam the gateway
stack plugs into: the in-process queue path and the asyncio socket
path (:mod:`repro.service.netserver`) both present a ``Transport`` to
callers, so the provider-surface facade is written once.

Where this sits in the stack: ``docs/architecture.md`` (transport
layer) and ``docs/transport.md`` (framing and server deep-dive).
"""

from __future__ import annotations

import abc
import struct
from dataclasses import dataclass
from typing import Iterable

from ..errors import FrameTooLargeError, TruncatedFrameError, WireError

# -- frame format ------------------------------------------------------------

#: Stream magic: lets a decoder reject cross-protocol garbage (an HTTP
#: request, say) on the first two bytes.
WIRE_MAGIC = b"P2"

#: Framing version.  Bumped only for incompatible header changes; the
#: payload envelopes carry their own typing and evolve independently.
WIRE_VERSION = 1

#: A protocol request: payload is a ``wire.encode_request`` envelope.
FRAME_REQUEST = 0x01
#: A protocol request pinned to one worker: payload is a 2-byte
#: big-endian worker index followed by the request envelope.  The
#: socket twin of the gateway's ``worker=`` override — an operator/test
#: hook for defeating shard affinity (racing one token onto two
#: workers); correctness never depends on routing.
FRAME_REQUEST_PINNED = 0x02
#: A protocol response: payload is a ``wire.encode_response`` envelope,
#: byte-for-byte as the worker produced it.
FRAME_RESPONSE = 0x03
#: A read-surface call (catalog, price, revocation sync, ...): payload
#: is a codec-encoded ``{"op": ..., "args": ...}`` body.
FRAME_CONTROL = 0x04
#: The reply to a control call: codec-encoded result-or-error body.
FRAME_CONTROL_REPLY = 0x05

FRAME_TYPES = frozenset(
    (
        FRAME_REQUEST,
        FRAME_REQUEST_PINNED,
        FRAME_RESPONSE,
        FRAME_CONTROL,
        FRAME_CONTROL_REPLY,
    )
)

_HEADER = struct.Struct("!2sBBQI")
HEADER_SIZE = _HEADER.size  # 16

#: Default ceiling on a frame payload.  Generous — the largest real
#: envelope (a redeem request with certificate and proofs at real key
#: sizes) is tens of kilobytes — while keeping the worst-case buffer an
#: untrusted peer can demand far below anything that hurts.
MAX_FRAME_PAYLOAD = 8 * 1024 * 1024

_PIN = struct.Struct("!H")


@dataclass(frozen=True)
class Frame:
    """One decoded frame: type tag, correlation id, payload bytes.

    ``payload`` may be a read-only :class:`memoryview` into the buffer
    the decoder was fed (the zero-copy fast path) rather than an owned
    ``bytes`` object.  Views compare equal to the same bytes and slice
    without copying; callers that need an owned copy (to outlive the
    frame, to pickle) take ``bytes(frame.payload)`` explicitly — that
    is the *one* place the copy happens.
    """

    type: int
    request_id: int
    payload: bytes | memoryview


def encode_frame(
    frame_type: int,
    request_id: int,
    payload: bytes,
    *,
    max_payload: int = MAX_FRAME_PAYLOAD,
) -> bytes:
    """Header + payload bytes for one frame.

    The sender enforces the same ceiling the receiver does: a payload
    too large to be accepted is refused here with
    :class:`~repro.errors.FrameTooLargeError` instead of being shipped
    to certain rejection.
    """
    if frame_type not in FRAME_TYPES:
        raise WireError(f"unknown frame type 0x{frame_type:02x}")
    if not 0 <= request_id < 1 << 64:
        raise WireError(f"request id {request_id} out of range")
    if len(payload) > max_payload:
        raise FrameTooLargeError(
            f"payload of {len(payload)} bytes exceeds the"
            f" {max_payload}-byte frame ceiling"
        )
    return (
        _HEADER.pack(WIRE_MAGIC, WIRE_VERSION, frame_type, request_id, len(payload))
        + payload
    )


def encode_pinned(worker: int, envelope: bytes) -> bytes:
    """The :data:`FRAME_REQUEST_PINNED` payload for a worker override."""
    if not 0 <= worker < 1 << 16:
        raise WireError(f"worker index {worker} out of range")
    return _PIN.pack(worker) + envelope


def decode_pinned(payload: bytes | memoryview) -> tuple[int, bytes | memoryview]:
    """Inverse of :func:`encode_pinned`: ``(worker, envelope)``.

    The envelope comes back as a view into ``payload`` — stripping the
    2-byte pin prefix never copies the request bytes.
    """
    if len(payload) < _PIN.size:
        raise WireError("pinned request shorter than its worker index")
    (worker,) = _PIN.unpack_from(payload)
    view = payload if isinstance(payload, memoryview) else memoryview(payload)
    return worker, view[_PIN.size:]


class FrameDecoder:
    """Strict incremental decoder for a stream of frames.

    Feed it whatever the socket hands you — single bytes, half a
    header, three frames at once — and it returns every *complete*
    frame, buffering the rest.  Violations raise typed errors and
    poison the decoder (a stream is meaningless after a framing error;
    the connection must be dropped, not resynchronized).

    Copy discipline (the TCP hot path): when a ``feed()`` call starts
    with an empty buffer — the steady state of a well-formed stream —
    every completed frame's payload is returned as a read-only
    :class:`memoryview` *into the fed buffer itself*; no payload byte
    is copied (:attr:`zero_copy_frames` counts these).  Only when a
    frame straddles ``feed()`` calls does the decoder buffer, and then
    the completed prefix is snapshotted exactly once (a single
    ``bytes`` of the consumed region, views into it per frame) before
    being dropped from the buffer — never a per-frame bytearray slice.
    The returned views alias the caller's buffer, so a caller that
    recycles its read buffer must consume frames before the next feed.
    """

    def __init__(self, *, max_payload: int = MAX_FRAME_PAYLOAD):
        self._max_payload = max_payload
        self._buffer = bytearray()
        self._dead = False
        self.zero_copy_frames = 0

    @property
    def buffered(self) -> int:
        """Bytes held back waiting for the rest of their frame."""
        return len(self._buffer)

    def _parse_header(self, buffer, offset: int) -> tuple[int, int, int]:
        """Validate one header at ``offset``; ``(type, id, length)``."""
        magic, version, frame_type, request_id, length = _HEADER.unpack_from(
            buffer, offset
        )
        if magic != WIRE_MAGIC:
            raise WireError(f"bad frame magic {bytes(magic)!r}")
        if version != WIRE_VERSION:
            raise WireError(f"unsupported framing version {version}")
        if frame_type not in FRAME_TYPES:
            raise WireError(f"unknown frame type 0x{frame_type:02x}")
        if length > self._max_payload:
            raise FrameTooLargeError(
                f"declared payload of {length} bytes exceeds the"
                f" {self._max_payload}-byte frame ceiling"
            )
        return frame_type, request_id, length

    def feed(self, data: bytes | bytearray | memoryview) -> list[Frame]:
        """Absorb ``data``; returns the frames it completed (often none).

        Raises :class:`~repro.errors.WireError` on bad magic/version/
        type, :class:`~repro.errors.FrameTooLargeError` the moment a
        header declares an over-limit payload — judged from the header
        alone, so the oversized payload itself is never buffered.
        """
        if self._dead:
            raise WireError("decoder poisoned by an earlier framing error")
        frames: list[Frame] = []
        try:
            if not self._buffer:
                # Zero-copy fast path: parse complete frames straight
                # out of ``data`` and hand back views into it.  Pin the
                # bytes down first if the caller fed a mutable buffer.
                if not isinstance(data, bytes):
                    data = bytes(data)
                size = len(data)
                offset = 0
                while size - offset >= HEADER_SIZE:
                    frame_type, request_id, length = self._parse_header(data, offset)
                    end = offset + HEADER_SIZE + length
                    if size < end:
                        break
                    payload = memoryview(data)[offset + HEADER_SIZE:end]
                    frames.append(Frame(frame_type, request_id, payload))
                    self.zero_copy_frames += 1
                    offset = end
                if offset < size:
                    self._buffer += memoryview(data)[offset:]
                return frames
            self._buffer += data
            # A frame straddled feeds: parse out of the buffer, then
            # snapshot the entire consumed region in ONE copy and
            # return views into the snapshot (del-after-view).
            consumed = 0
            headers: list[tuple[int, int, int]] = []
            while len(self._buffer) - consumed >= HEADER_SIZE:
                frame_type, request_id, length = self._parse_header(
                    self._buffer, consumed
                )
                end = consumed + HEADER_SIZE + length
                if len(self._buffer) < end:
                    break
                headers.append((frame_type, request_id, consumed + HEADER_SIZE))
                consumed = end
            if consumed:
                with memoryview(self._buffer) as whole:
                    block = bytes(whole[:consumed])
                del self._buffer[:consumed]
                for index, (frame_type, request_id, start) in enumerate(headers):
                    end = headers[index + 1][2] - HEADER_SIZE \
                        if index + 1 < len(headers) else consumed
                    frames.append(
                        Frame(frame_type, request_id, memoryview(block)[start:end])
                    )
        except WireError:
            self._dead = True
            raise
        return frames

    def finish(self) -> None:
        """Declare end-of-stream; raises if it cut a frame in half."""
        if self._buffer and not self._dead:
            self._dead = True
            raise TruncatedFrameError(
                f"stream ended mid-frame with {len(self._buffer)} byte(s)"
                " buffered"
            )


# -- the pluggable interfaces ------------------------------------------------


def _op_name(wire, request) -> str:
    """The wire kind as a span attribute; never raises (bad requests
    still get refused by the real encode, with a clean trace)."""
    try:
        return wire.request_kind(request)
    except Exception:
        return "unknown"


class Transport(abc.ABC):
    """A caller's path to the worker pool: submit tickets, gather results.

    Two implementations exist: :class:`~repro.service.gateway.
    ServiceGateway` hands requests straight to the pool's queues
    in-process, and :class:`~repro.service.netserver.NetClient` frames
    them over a TCP connection.  Both return results through the same
    ticket discipline, so everything above (the provider-surface
    facade, batch semantics, the tests shared between the paths) is
    written once against this interface.
    """

    @abc.abstractmethod
    def submit(self, request, *, worker: int | None = None) -> int:
        """Enqueue one protocol request; returns a gather ticket.

        ``worker`` overrides shard-affine routing (test/ops hook)."""

    @abc.abstractmethod
    def gather(self, tickets: list[int]) -> list:
        """Results (or rejecting exceptions) aligned with ``tickets``."""

    @abc.abstractmethod
    def close(self) -> None:
        """Release the transport's resources; idempotent."""

    def call(self, request):
        """One request, synchronously; desk rejections are raised.

        When tracing is enabled this opens the ``client.call`` root
        boundary span: every hop below (frame decode, queue wait,
        worker stages, 2PC phases) parents into the trace it starts,
        and its end runs the tail-based keep decision.
        """
        from . import tracing, wire

        with tracing.span(
            "client.call", root=True, boundary=True,
            op=_op_name(wire, request), n=1,
        ) as sp:
            result = self.gather([self.submit(request)])[0]
            if isinstance(result, BaseException):
                sp.mark_error(type(result).__name__)
        if isinstance(result, BaseException):
            raise result
        return result

    def call_many(self, requests: Iterable, *, worker: int | None = None) -> list:
        """Batch-desk semantics: the returned list aligns with the
        inputs and holds results or the exception that rejected each
        item — one offender never poisons the rest."""
        from . import tracing, wire

        requests = list(requests)
        op = _op_name(wire, requests[0]) if requests else "empty"
        with tracing.span(
            "client.call", root=True, boundary=True, op=op, n=len(requests)
        ) as sp:
            tickets = [self.submit(request, worker=worker) for request in requests]
            results = self.gather(tickets)
            for result in results:
                if isinstance(result, BaseException):
                    sp.mark_error(type(result).__name__)
                    break
        return results


class Listener(abc.ABC):
    """A server-side acceptor feeding a worker pool.

    The asyncio socket front-end is the real implementation; the
    in-process path needs none (callers hold the gateway directly).
    """

    @property
    @abc.abstractmethod
    def address(self) -> tuple[str, int]:
        """The ``(host, port)`` clients connect to."""

    @abc.abstractmethod
    def close(self) -> None:
        """Stop accepting and release the listener; idempotent."""
