"""Memoization on frozen dataclasses.

Signable structures (licences, certificates, protocol messages) are
frozen dataclasses whose canonical byte payloads get re-derived by
every party that verifies them — and by every screening stage of the
batch desks.  Canonical encoding is not free, so those classes cache
the bytes on first use via :func:`cached_bytes`, which writes through
``object.__setattr__`` (instance ``__dict__`` entries are invisible to
dataclass equality, repr and ``dataclasses.replace``, so the cache is
safe for value semantics).

Issuing code may pre-seed a cache the same way when it already holds
the canonical bytes (e.g. the registration protocol seeds
``_signed_payload`` on a fresh certificate).  Simple derived *values*
on frozen dataclasses can use :class:`functools.cached_property`
instead, which writes the instance ``__dict__`` directly.
"""

from __future__ import annotations

from typing import Callable


def cached_bytes(obj, attribute: str, build: Callable[[], bytes]) -> bytes:
    """Return ``obj.<attribute>``, computing it via ``build`` once."""
    cached = obj.__dict__.get(attribute)
    if cached is None:
        cached = build()
        object.__setattr__(obj, attribute, cached)
    return cached
