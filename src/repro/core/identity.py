"""Smart cards and pseudonyms — the user-side trust anchor.

The paper's architecture hangs off a tamper-proof smart card personal-
ized by the card issuer.  The card:

- generates and stores **pseudonym keys** (Diffie–Hellman pairs
  ``y = g^x``); the private halves never cross the card boundary;
- embeds the card's **identity tag** into an encrypted escrow whenever
  a pseudonym is certified (see :mod:`repro.core.escrow`), which is
  what makes anonymity *revocable* rather than absolute;
- **gates content-key release on device compliance**: the card only
  unwraps a licence's content key for a device that presents a valid
  compliance certificate — this is the enforcement point that keeps
  content protected even though the user is anonymous.

Software stands in for tamper-proof hardware (see DESIGN.md §2): the
protocols only depend on the card's interface, and the no-key-export
property is enforced by this module's API surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from ..crypto.elgamal import ElGamalPrivateKey, ElGamalPublicKey
from ..crypto.groups import PrimeGroup
from ..crypto.hashes import int_to_bytes
from ..crypto.rand import RandomSource
from ..crypto.schnorr import SchnorrPrivateKey, SchnorrPublicKey, SchnorrSignature
from ..errors import AuthenticationError, ComplianceError
from .escrow import IdentityEscrow, create_escrow


@dataclass(frozen=True)
class Pseudonym:
    """The public face of one pseudonym: a group element plus helpers.

    One discrete-log key serves two domain-separated purposes: Schnorr
    signatures (authenticating protocol requests) and the hashed-
    ElGamal KEM (receiving wrapped content keys).  The private exponent
    stays inside the :class:`SmartCard` that minted it.
    """

    group: PrimeGroup
    y: int

    # The derived key views and the fingerprint are pure functions of
    # (group, y) but not free: each key construction re-checks subgroup
    # membership (a Jacobi symbol) and the fingerprint hashes the
    # element.  Request validation touches them several times per
    # message — and the batch desks dozens of times per queue — so they
    # are cached properties (which write the instance ``__dict__``
    # directly, working on a frozen dataclass and staying invisible to
    # equality/replace).

    @cached_property
    def signing_key(self) -> SchnorrPublicKey:
        return SchnorrPublicKey(group=self.group, y=self.y)

    @cached_property
    def kem_key(self) -> ElGamalPublicKey:
        return ElGamalPublicKey(group=self.group, y=self.y)

    @cached_property
    def fingerprint(self) -> bytes:
        return self.signing_key.fingerprint()

    def as_dict(self) -> dict:
        return {"group": self.group.name, "y": self.y}

    @classmethod
    def from_dict(cls, data: dict) -> "Pseudonym":
        from ..crypto.groups import named_group

        return cls(group=named_group(data["group"]), y=int(data["y"]))


def identity_tag_for_card(group: PrimeGroup, card_id: bytes) -> int:
    """The card's identity tag: a group element derived from its id.

    Deterministic, so the issuer can precompute the tag ↔ account map
    at enrolment and recognize the tag when an escrow is opened.
    """
    return group.encode_element(b"identity-tag:" + card_id)


class SmartCard:
    """Per-user key store with a deliberately narrow interface."""

    def __init__(
        self,
        card_id: bytes,
        group: PrimeGroup,
        *,
        rng: RandomSource,
        authority_key=None,
    ):
        self.card_id = card_id
        self.group = group
        self._rng = rng
        # Root key of the compliance authority; set at personalization,
        # used to gate content-key release on device compliance.
        self._authority_key = authority_key
        self._identity_tag = identity_tag_for_card(group, card_id)
        self._pseudonym_secrets: dict[bytes, SchnorrPrivateKey] = {}

    # -- identity ------------------------------------------------------------

    @property
    def identity_tag(self) -> int:
        """The card's tag as a group element (public to the TTP only)."""
        return self._identity_tag

    @property
    def identity_tag_bytes(self) -> bytes:
        """Byte form used as the account-store key."""
        return int_to_bytes(self._identity_tag, (self.group.p.bit_length() + 7) // 8)

    # -- pseudonym lifecycle ----------------------------------------------------

    def new_pseudonym(self) -> Pseudonym:
        """Mint a fresh pseudonym; the secret stays on the card."""
        from ..crypto.schnorr import generate_schnorr_key

        secret = generate_schnorr_key(self.group, rng=self._rng)
        pseudonym = Pseudonym(group=self.group, y=secret.public_key.y)
        self._pseudonym_secrets[pseudonym.fingerprint] = secret
        return pseudonym

    def holds(self, pseudonym: Pseudonym) -> bool:
        return pseudonym.fingerprint in self._pseudonym_secrets

    def pseudonym_count(self) -> int:
        return len(self._pseudonym_secrets)

    def make_escrow(
        self, pseudonym: Pseudonym, ttp_key: ElGamalPublicKey
    ) -> IdentityEscrow:
        """Escrow this card's identity tag, bound to ``pseudonym``.

        The card is the component trusted to embed its *true* tag
        (tamper-proof hardware in the paper; see DESIGN.md §2) — the
        attached proof binds the escrow to the pseudonym so it cannot
        be transplanted onto another certificate.
        """
        self._require_secret(pseudonym)
        return create_escrow(
            tag_element=self._identity_tag,
            ttp_key=ttp_key,
            binding=pseudonym.fingerprint,
            rng=self._rng,
        )

    # -- protocol operations ------------------------------------------------

    def sign(self, pseudonym: Pseudonym, message: bytes) -> SchnorrSignature:
        """Schnorr-sign ``message`` under one of this card's pseudonyms."""
        secret = self._require_secret(pseudonym)
        return secret.sign(message, rng=self._rng)

    def unwrap_content_key(
        self,
        pseudonym: Pseudonym,
        wrapped: dict,
        *,
        context: bytes,
        device_certificate=None,
    ) -> bytes:
        """Release a licence's content key **to a compliant device only**.

        ``device_certificate`` must verify against the compliance
        authority the card was personalized with; this is where the
        DRM half of the bargain is enforced on the user side.
        """
        if self._authority_key is not None:
            if device_certificate is None:
                raise ComplianceError("card requires a device certificate")
            device_certificate.verify(self._authority_key)
        secret = self._require_secret(pseudonym)
        kem_private = ElGamalPrivateKey(group=self.group, x=secret.x)
        return kem_private.kem_unwrap(wrapped, context=context)

    def _require_secret(self, pseudonym: Pseudonym) -> SchnorrPrivateKey:
        secret = self._pseudonym_secrets.get(pseudonym.fingerprint)
        if secret is None:
            raise AuthenticationError(
                f"card does not hold pseudonym {pseudonym.fingerprint.hex()[:16]}"
            )
        return secret

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"SmartCard(id={self.card_id.hex()[:12]},"
            f" pseudonyms={len(self._pseudonym_secrets)})"
        )
