"""Licence structures: personalized and anonymous.

The two licence shapes carry the paper's central structural idea:

- a :class:`PersonalLicense` binds (content, rights, **pseudonym**)
  together with the content key wrapped *to that pseudonym* — useless
  to anyone else, but naming no identity;

- an :class:`AnonymousLicense` binds (content, rights, **unique token
  id**) and **no holder at all** — a bearer object any user can redeem
  exactly once.  It carries no wrapped key: the content key is only
  re-wrapped when the licence is redeemed for a personalized one, so
  possession of the bearer bytes alone never yields content.

Both are signed by the content provider over a canonical payload; the
licence id doubles as the revocation-list key and (for anonymous
licences) the spent-store key.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import codec
from ..crypto.rsa import RsaPrivateKey, RsaPublicKey
from ..memo import cached_bytes
from ..errors import InvalidSignature
from ..rel.model import Rights
from .identity import Pseudonym

LICENSE_ID_SIZE = 16


def _require_license_id(license_id: bytes) -> bytes:
    if len(license_id) != LICENSE_ID_SIZE:
        raise InvalidSignature(
            f"licence id must be {LICENSE_ID_SIZE} bytes, got {len(license_id)}"
        )
    return license_id


@dataclass(frozen=True)
class PersonalLicense:
    """Pseudonym-bound licence with the wrapped content key."""

    license_id: bytes
    content_id: str
    rights: Rights
    pseudonym: Pseudonym
    wrapped_key: dict          # hashed-ElGamal KEM blob (c1, ct, tag)
    issued_at: int
    signature: bytes

    def __post_init__(self) -> None:
        _require_license_id(self.license_id)

    @property
    def holder_fingerprint(self) -> bytes:
        return self.pseudonym.fingerprint

    def kem_context(self) -> bytes:
        """Context binding the wrapped key to this exact licence."""
        return kem_context(self.license_id, self.content_id)

    def payload(self) -> bytes:
        # Memoized: every verifying party re-derives it otherwise.  The
        # signature field is not part of the payload, so the cache is
        # safe across sign-then-carry flows.
        return cached_bytes(
            self,
            "_payload",
            lambda: codec.encode(
                {
                    "what": "personal-license",
                    "id": self.license_id,
                    "content": self.content_id,
                    "rights": self.rights.as_dict(),
                    "pseudonym": self.pseudonym.as_dict(),
                    "key": self.wrapped_key,
                    "at": self.issued_at,
                }
            ),
        )

    def verify(self, provider_key: RsaPublicKey) -> None:
        """Provider-signature check; raises
        :class:`~repro.errors.InvalidSignature` on mismatch."""
        provider_key.verify_pkcs1(self.payload(), self.signature)

    def as_dict(self) -> dict:
        return {
            "id": self.license_id,
            "content": self.content_id,
            "rights": self.rights.as_dict(),
            "pseudonym": self.pseudonym.as_dict(),
            "key": self.wrapped_key,
            "at": self.issued_at,
            "sig": self.signature,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PersonalLicense":
        return cls(
            license_id=bytes(data["id"]),
            content_id=data["content"],
            rights=Rights.from_dict(data["rights"]),
            pseudonym=Pseudonym.from_dict(data["pseudonym"]),
            wrapped_key=dict(data["key"]),
            issued_at=int(data["at"]),
            signature=bytes(data["sig"]),
        )

    def wire_size(self) -> int:
        """Encoded size in bytes (experiment E6)."""
        return len(codec.encode(self.as_dict()))


@dataclass(frozen=True)
class AnonymousLicense:
    """Holder-free bearer licence with a unique, spend-once token id.

    This is the object user A hands to user B over any channel.  The
    provider remembers issuing token ``license_id`` and will personalize
    it exactly once; copying the bytes does not copy the right.
    """

    license_id: bytes          # the unique identifier R from the paper
    content_id: str
    rights: Rights
    issued_at: int
    signature: bytes

    def __post_init__(self) -> None:
        _require_license_id(self.license_id)

    def payload(self) -> bytes:
        return cached_bytes(
            self,
            "_payload",
            lambda: codec.encode(
                {
                    "what": "anonymous-license",
                    "id": self.license_id,
                    "content": self.content_id,
                    "rights": self.rights.as_dict(),
                    "at": self.issued_at,
                }
            ),
        )

    def verify(self, provider_key: RsaPublicKey) -> None:
        provider_key.verify_pkcs1(self.payload(), self.signature)

    def as_dict(self) -> dict:
        return {
            "id": self.license_id,
            "content": self.content_id,
            "rights": self.rights.as_dict(),
            "at": self.issued_at,
            "sig": self.signature,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AnonymousLicense":
        return cls(
            license_id=bytes(data["id"]),
            content_id=data["content"],
            rights=Rights.from_dict(data["rights"]),
            issued_at=int(data["at"]),
            signature=bytes(data["sig"]),
        )

    def wire_size(self) -> int:
        """Encoded size in bytes (experiment E6)."""
        return len(codec.encode(self.as_dict()))


def kem_context(license_id: bytes, content_id: str) -> bytes:
    """The KEM binding context shared by issuance and the smart card."""
    return b"license-key:" + license_id + b":" + content_id.encode("utf-8")


def sign_personal_license(
    provider_key: RsaPrivateKey,
    *,
    license_id: bytes,
    content_id: str,
    rights: Rights,
    pseudonym: Pseudonym,
    wrapped_key: dict,
    issued_at: int,
) -> PersonalLicense:
    """Assemble and sign a personalized licence."""
    unsigned = PersonalLicense(
        license_id=license_id,
        content_id=content_id,
        rights=rights,
        pseudonym=pseudonym,
        wrapped_key=wrapped_key,
        issued_at=issued_at,
        signature=b"",
    )
    payload = unsigned.payload()
    signed = PersonalLicense(
        license_id=license_id,
        content_id=content_id,
        rights=rights,
        pseudonym=pseudonym,
        wrapped_key=wrapped_key,
        issued_at=issued_at,
        signature=provider_key.sign_pkcs1(payload),
    )
    # The payload excludes the signature, so the signed instance can
    # inherit the cache instead of re-encoding at first verification.
    object.__setattr__(signed, "_payload", payload)
    return signed


def sign_anonymous_license(
    provider_key: RsaPrivateKey,
    *,
    license_id: bytes,
    content_id: str,
    rights: Rights,
    issued_at: int,
) -> AnonymousLicense:
    """Assemble and sign an anonymous (bearer) licence."""
    unsigned = AnonymousLicense(
        license_id=license_id,
        content_id=content_id,
        rights=rights,
        issued_at=issued_at,
        signature=b"",
    )
    payload = unsigned.payload()
    signed = AnonymousLicense(
        license_id=license_id,
        content_id=content_id,
        rights=rights,
        issued_at=issued_at,
        signature=provider_key.sign_pkcs1(payload),
    )
    object.__setattr__(signed, "_payload", payload)
    return signed
