"""Wire messages with canonical signing payloads.

Every request a user sends to the provider is (a) expressed as a codec
dict so its size on the wire is measurable, and (b) signed under the
acting pseudonym over a canonical payload that includes a fresh nonce
and a timestamp — the provider's replay filter stores the nonce, and
the signature binds every security-relevant field (no coin hijacking,
no licence-id swapping).

The provider never sees a user identity in any of these messages;
that is checkable right here — grep for ``user_id``: absent.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import codec
from ..crypto.schnorr import SchnorrSignature
from ..memo import cached_bytes
from .certificates import PseudonymCertificate
from .licenses import AnonymousLicense

NONCE_SIZE = 16


# ---------------------------------------------------------------------------
# Payment: coins
# ---------------------------------------------------------------------------


def coin_payload(serial: bytes, value: int) -> bytes:
    """The bytes the bank blind-signs for one coin."""
    return codec.encode({"what": "coin", "serial": serial, "value": value})


@dataclass(frozen=True)
class Coin:
    """Bearer e-cash: serial, denomination, bank blind signature."""

    serial: bytes
    value: int
    signature: bytes

    def payload(self) -> bytes:
        return coin_payload(self.serial, self.value)

    def spent_token(self) -> bytes:
        """The exactly-once key this coin spends under.

        Value-scoped (``value || serial``) so serials colliding across
        denominations cannot shadow each other.  The ONE definition:
        the bank's deposit desk, the service layer's sharded desk and
        the gateway's shard-affinity routing must all agree on it, or
        a coin spent through one desk would go unrecognized by
        another.
        """
        return self.value.to_bytes(4, "big") + self.serial

    def as_dict(self) -> dict:
        return {"serial": self.serial, "value": self.value, "sig": self.signature}

    @classmethod
    def from_dict(cls, data: dict) -> "Coin":
        return cls(
            serial=bytes(data["serial"]),
            value=int(data["value"]),
            signature=bytes(data["sig"]),
        )

    def wire_size(self) -> int:
        return len(codec.encode(self.as_dict()))


@dataclass(frozen=True)
class DepositRequest:
    """A merchant's coin deposit, as it crosses the wire to the bank desk.

    The in-process flow calls ``bank.deposit_batch(account, coins)``
    directly; the service layer needs the same pair as one encodable
    message so a gateway can hand a whole payment to a worker's deposit
    desk.
    """

    account: str
    coins: tuple[Coin, ...]

    def as_dict(self) -> dict:
        return {
            "account": self.account,
            "coins": [coin.as_dict() for coin in self.coins],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DepositRequest":
        return cls(
            account=data["account"],
            coins=tuple(Coin.from_dict(c) for c in data["coins"]),
        )

    def wire_size(self) -> int:
        return len(codec.encode(self.as_dict()))


@dataclass(frozen=True)
class WithdrawRequest:
    """A customer's blind withdrawal, as it crosses the wire to the bank.

    The bank sees the account and the denomination but only the
    *blinded* coin request — the unlinkability anchor survives the
    service layer untouched.  The in-process flow calls
    ``bank.withdraw_blind(account, denomination, blinded)`` directly;
    this message is that triple as one encodable envelope.
    """

    account: str
    denomination: int
    blinded: int

    def as_dict(self) -> dict:
        return {
            "account": self.account,
            "denomination": self.denomination,
            "blinded": self.blinded,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WithdrawRequest":
        return cls(
            account=str(data["account"]),
            denomination=int(data["denomination"]),
            blinded=int(data["blinded"]),
        )

    def wire_size(self) -> int:
        return len(codec.encode(self.as_dict()))


# ---------------------------------------------------------------------------
# Purchase
# ---------------------------------------------------------------------------


def purchase_signing_payload(
    content_id: str,
    pseudonym_fingerprint: bytes,
    coin_serials: list[bytes],
    nonce: bytes,
    at: int,
) -> bytes:
    return codec.encode(
        {
            "what": "purchase-request",
            "content": content_id,
            "pseudonym": pseudonym_fingerprint,
            "coins": sorted(coin_serials),
            "nonce": nonce,
            "at": at,
        }
    )


@dataclass(frozen=True)
class PurchaseRequest:
    """Anonymous purchase: certificate + payment + pseudonym signature."""

    content_id: str
    certificate: PseudonymCertificate
    coins: tuple[Coin, ...]
    nonce: bytes
    at: int
    signature: SchnorrSignature

    def signing_payload(self) -> bytes:
        # Memoized: the batch desks re-derive it per screening stage.
        return cached_bytes(
            self,
            "_signing_payload",
            lambda: purchase_signing_payload(
                self.content_id,
                self.certificate.fingerprint,
                [coin.serial for coin in self.coins],
                self.nonce,
                self.at,
            ),
        )

    def as_dict(self) -> dict:
        return {
            "content": self.content_id,
            "cert": self.certificate.as_dict(),
            "coins": [coin.as_dict() for coin in self.coins],
            "nonce": self.nonce,
            "at": self.at,
            "sig": self.signature.as_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PurchaseRequest":
        return cls(
            content_id=data["content"],
            certificate=PseudonymCertificate.from_dict(data["cert"]),
            coins=tuple(Coin.from_dict(c) for c in data["coins"]),
            nonce=bytes(data["nonce"]),
            at=int(data["at"]),
            signature=SchnorrSignature.from_dict(data["sig"]),
        )

    def wire_size(self) -> int:
        return len(codec.encode(self.as_dict()))


# ---------------------------------------------------------------------------
# Exchange (personalized → anonymous)
# ---------------------------------------------------------------------------


def exchange_signing_payload(
    license_id: bytes,
    nonce: bytes,
    at: int,
    restrict_to: tuple[str, ...] | None = None,
) -> bytes:
    payload = {
        "what": "exchange-request",
        "license": license_id,
        "nonce": nonce,
        "at": at,
    }
    if restrict_to is not None:
        payload["restrict"] = sorted(restrict_to)
    return codec.encode(payload)


@dataclass(frozen=True)
class ExchangeRequest:
    """Give up a personalized licence for an anonymous one.

    Signed by the pseudonym the licence is bound to — only the holder
    can initiate a transfer.  No certificate needed: the provider
    already knows the pseudonym from the licence itself.

    ``restrict_to`` optionally names the actions the outgoing anonymous
    licence keeps (a giver may pass on *fewer* rights than they hold —
    e.g. play-only, no onward transfer).  Restriction is monotone: the
    provider refuses any request that would widen rights.
    """

    license_id: bytes
    nonce: bytes
    at: int
    signature: SchnorrSignature
    restrict_to: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        # Canonical order, so equality and the signed payload agree for
        # any input ordering.
        if self.restrict_to is not None:
            object.__setattr__(self, "restrict_to", tuple(sorted(self.restrict_to)))

    def signing_payload(self) -> bytes:
        return exchange_signing_payload(
            self.license_id, self.nonce, self.at, self.restrict_to
        )

    def as_dict(self) -> dict:
        data = {
            "license": self.license_id,
            "nonce": self.nonce,
            "at": self.at,
            "sig": self.signature.as_dict(),
        }
        if self.restrict_to is not None:
            data["restrict"] = sorted(self.restrict_to)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ExchangeRequest":
        restrict = data.get("restrict")
        return cls(
            license_id=bytes(data["license"]),
            nonce=bytes(data["nonce"]),
            at=int(data["at"]),
            signature=SchnorrSignature.from_dict(data["sig"]),
            restrict_to=tuple(restrict) if restrict is not None else None,
        )

    def wire_size(self) -> int:
        return len(codec.encode(self.as_dict()))


# ---------------------------------------------------------------------------
# Redemption (anonymous → personalized)
# ---------------------------------------------------------------------------


def redeem_signing_payload(
    token_id: bytes, pseudonym_fingerprint: bytes, nonce: bytes, at: int
) -> bytes:
    return codec.encode(
        {
            "what": "redeem-request",
            "token": token_id,
            "pseudonym": pseudonym_fingerprint,
            "nonce": nonce,
            "at": at,
        }
    )


@dataclass(frozen=True)
class RedeemRequest:
    """Turn a bearer licence into a personalized one for a new pseudonym."""

    anonymous_license: AnonymousLicense
    certificate: PseudonymCertificate
    nonce: bytes
    at: int
    signature: SchnorrSignature

    def signing_payload(self) -> bytes:
        # Memoized: the batch desks re-derive it per screening stage.
        return cached_bytes(
            self,
            "_signing_payload",
            lambda: redeem_signing_payload(
                self.anonymous_license.license_id,
                self.certificate.fingerprint,
                self.nonce,
                self.at,
            ),
        )

    def as_dict(self) -> dict:
        return {
            "anon": self.anonymous_license.as_dict(),
            "cert": self.certificate.as_dict(),
            "nonce": self.nonce,
            "at": self.at,
            "sig": self.signature.as_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RedeemRequest":
        return cls(
            anonymous_license=AnonymousLicense.from_dict(data["anon"]),
            certificate=PseudonymCertificate.from_dict(data["cert"]),
            nonce=bytes(data["nonce"]),
            at=int(data["at"]),
            signature=SchnorrSignature.from_dict(data["sig"]),
        )

    def wire_size(self) -> int:
        return len(codec.encode(self.as_dict()))


def redemption_transcript(
    certificate: PseudonymCertificate,
    signature: SchnorrSignature,
    nonce: bytes,
    at: int,
) -> bytes:
    """What the spent store remembers about a redemption — enough to
    re-verify the signature later as misuse evidence.

    The certificate is embedded as its already-canonical signed payload
    plus the issuer signature, rather than re-encoded field by field —
    the payload bytes are memoized on the certificate, so building a
    transcript costs one flat encode instead of re-serializing the
    whole credential on every redemption.
    """
    return codec.encode(
        {
            "what": "redemption-transcript",
            "cert_payload": certificate.signed_payload(),
            "cert_sig": certificate.signature,
            "sig": signature.as_dict(),
            "nonce": nonce,
            "at": at,
        }
    )


def parse_redemption_transcript(data: bytes) -> dict:
    from ..errors import CodecError
    from .escrow import IdentityEscrow
    from .identity import Pseudonym

    decoded = codec.decode(data)
    payload = codec.decode(decoded["cert_payload"])
    if payload.get("what") != "pseudonym-cert":
        raise CodecError("transcript does not embed a pseudonym certificate")
    certificate = PseudonymCertificate(
        pseudonym=Pseudonym.from_dict(payload["pseudonym"]),
        escrow=IdentityEscrow.from_dict(payload["escrow"]),
        signature=bytes(decoded["cert_sig"]),
    )
    # The embedded bytes are the certificate's canonical payload; seed
    # the memo so re-verification does not re-encode it.
    object.__setattr__(certificate, "_signed_payload", bytes(decoded["cert_payload"]))
    return {
        "cert": certificate,
        "sig": SchnorrSignature.from_dict(decoded["sig"]),
        "nonce": bytes(decoded["nonce"]),
        "at": int(decoded["at"]),
    }


# ---------------------------------------------------------------------------
# Misuse evidence (input to anonymity revocation)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MisuseEvidence:
    """Two conflicting redemption transcripts for one token id.

    Produced by the provider when a spent token is presented again;
    consumed by the TTP, which re-verifies everything before opening
    any escrow.
    """

    kind: str                  # "double-redemption" | "double-spend"
    token_id: bytes
    content_id: str
    first_transcript: bytes    # redemption_transcript bytes
    second_transcript: bytes

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "token": self.token_id,
            "content": self.content_id,
            "first": self.first_transcript,
            "second": self.second_transcript,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MisuseEvidence":
        return cls(
            kind=data["kind"],
            token_id=bytes(data["token"]),
            content_id=data["content"],
            first_transcript=bytes(data["first"]),
            second_transcript=bytes(data["second"]),
        )

    def wire_size(self) -> int:
        return len(codec.encode(self.as_dict()))
