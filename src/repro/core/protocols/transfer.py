"""Unlinkable licence transfer — the paper's core contribution.

The transfer runs as two provider interactions separated by an
out-of-band handover::

    A → provider : ExchangeRequest(L_A)          signed by A's pseudonym
    provider → A : AnonymousLicense(R)           L_A revoked on the LRL
    A → B        : AnonymousLicense(R)           any channel; not observed
    B → provider : RedeemRequest(R, cert_B)      fresh pseudonym for B
    provider → B : PersonalLicense(L_B)          R marked spent

What the provider can link: pseudonym_A gave up a licence for content
X at t1; token R was redeemed by pseudonym_B at t2.  Both pseudonyms
are blind-certified one-time identities, so no *user* link follows —
the analysis package quantifies what remains (timing correlation,
experiments E7/E8).

Safety: L_A is revoked before the anonymous licence leaves the
provider, and R redeems exactly once; copying the bearer bytes only
manufactures :class:`~repro.errors.DoubleRedemptionError` evidence.
"""

from __future__ import annotations

from ..licenses import AnonymousLicense, PersonalLicense
from ..messages import (
    ExchangeRequest,
    NONCE_SIZE,
    RedeemRequest,
    exchange_signing_payload,
    redeem_signing_payload,
)
from .base import Transcript


def build_exchange_request(
    user, license_, *, restrict_to: tuple[str, ...] | None = None
) -> ExchangeRequest:
    """The user-side half of an exchange: fresh nonce, sign.

    Split out (like :func:`build_redeem_request`) so callers — the
    service gateway's batch paths, benches, tests — can assemble raw
    requests without executing the protocol.  ``license_`` is the held
    :class:`~repro.core.licenses.PersonalLicense` (the signature must
    come from the pseudonym it is bound to).
    """
    card = user.require_card()
    nonce = user.rng.random_bytes(NONCE_SIZE)
    at = user.clock.now()
    payload = exchange_signing_payload(
        license_.license_id, nonce, at, restrict_to
    )
    return ExchangeRequest(
        license_id=license_.license_id,
        nonce=nonce,
        at=at,
        signature=card.sign(license_.pseudonym, payload),
        restrict_to=restrict_to,
    )


def exchange_for_anonymous(
    user,
    provider,
    license_id: bytes,
    *,
    restrict_to: tuple[str, ...] | None = None,
    transcript: Transcript | None = None,
) -> AnonymousLicense:
    """First half: trade a held licence for a bearer licence.

    ``restrict_to`` optionally narrows the rights handed onward (e.g.
    ``("play", "display")`` to gift a non-retransferable copy).
    """
    if transcript is not None:
        transcript.protocol = transcript.protocol or "exchange"
    license_ = user.licenses.get(license_id)
    if license_ is None:
        from ...errors import ProtocolError

        raise ProtocolError("user does not hold that licence")
    request = build_exchange_request(user, license_, restrict_to=restrict_to)
    if transcript is not None:
        transcript.add("exchange-request", "user", "provider", request.as_dict())

    anonymous = provider.exchange(request)

    anonymous.verify(provider.license_key)
    # The licence is gone from the user's shelf the moment it is revoked.
    user.remove_license(license_id)
    if transcript is not None:
        transcript.add("anonymous-license", "provider", "user", anonymous.as_dict())
    return anonymous


def build_redeem_request(
    user, provider, issuer, anonymous: AnonymousLicense
) -> RedeemRequest:
    """The user-side half of a redemption: certify, sign.

    Split out from :func:`redeem_anonymous` so a queue of requests can
    be prepared first and submitted together through
    :meth:`~repro.core.actors.provider.ContentProvider.redeem_batch`.
    """
    card = user.require_card()
    certificate = user.certificate_for_transaction(issuer)
    nonce = user.rng.random_bytes(NONCE_SIZE)
    at = user.clock.now()
    payload = redeem_signing_payload(
        anonymous.license_id, certificate.fingerprint, nonce, at
    )
    signature = card.sign(certificate.pseudonym, payload)
    return RedeemRequest(
        anonymous_license=anonymous,
        certificate=certificate,
        nonce=nonce,
        at=at,
        signature=signature,
    )


def accept_redeemed_license(user, provider, request: RedeemRequest, license_) -> None:
    """The user-side close of a redemption: verify and store the licence."""
    license_.verify(provider.license_key)
    if license_.holder_fingerprint != request.certificate.fingerprint:
        from ...errors import ProtocolError

        raise ProtocolError("provider issued licence to a different pseudonym")
    user.add_license(license_)


def redeem_anonymous(
    user,
    provider,
    issuer,
    anonymous: AnonymousLicense,
    *,
    transcript: Transcript | None = None,
) -> PersonalLicense:
    """Second half: personalize a received bearer licence."""
    if transcript is not None:
        transcript.protocol = transcript.protocol or "redemption"
    request = build_redeem_request(user, provider, issuer, anonymous)
    if transcript is not None:
        transcript.add("redeem-request", "user", "provider", request.as_dict())

    license_ = provider.redeem(request)

    accept_redeemed_license(user, provider, request, license_)
    if transcript is not None:
        transcript.add("license", "provider", "user", license_.as_dict())
    return license_


def transfer_license(
    sender,
    receiver,
    provider,
    issuer,
    license_id: bytes,
    *,
    transcript: Transcript | None = None,
) -> PersonalLicense:
    """Full A→B transfer (exchange, out-of-band handover, redemption)."""
    if transcript is not None:
        transcript.protocol = "transfer"
    anonymous = exchange_for_anonymous(
        sender, provider, license_id, transcript=transcript
    )
    if transcript is not None:
        # The out-of-band handover: invisible to the provider, but it
        # still costs wire bytes between the users.
        transcript.add("handover", "sender", "receiver", anonymous.as_dict())
    return redeem_anonymous(
        receiver, provider, issuer, anonymous, transcript=transcript
    )
