"""Local content access — no provider involvement.

The whole point of the paper's architecture is that *consumption* is
invisible to the provider: licence verification, rights evaluation and
key unwrapping happen between the device and the smart card.  The only
provider interaction is the (unauthenticated, cacheable) package
download, which reveals the device's network presence but neither an
identity nor a licence.
"""

from __future__ import annotations

from .base import Transcript


def render_content(
    user,
    device,
    provider,
    content_id: str,
    *,
    action: str = "play",
    transcript: Transcript | None = None,
) -> bytes:
    """Download (or re-download) the package and render it locally."""
    if transcript is not None:
        transcript.protocol = transcript.protocol or "access"
    card = user.require_card()
    license_ = user.license_for_content(content_id)
    package = provider.download(content_id)
    if transcript is not None:
        # The download is the only off-device message in the protocol.
        transcript.add("package-download", "provider", "device", package.to_bytes())
    payload = device.render(license_, package, card, action=action)
    return payload
