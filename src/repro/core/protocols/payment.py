"""E-cash withdrawal (the Chaum blind-signature flow).

The bank sees the account being debited and a blinded blob; the coin
serial inside is invisible to it.  When the coin later surfaces at a
deposit, nothing ties it back to this withdrawal — the payment channel
leaks amounts and timing, never identity-to-purchase links.
"""

from __future__ import annotations

from ...crypto.blind_rsa import BlindingClient, blind_with_factors
from ..messages import Coin, coin_payload
from .base import Transcript

_SERIAL_SIZE = 16


def withdraw_coins(user, bank, amount: int, *, transcript: Transcript | None = None) -> list[Coin]:
    """Withdraw ``amount`` (in credits) as coins into the user's wallet.

    Serials and blinding factors are drawn coin by coin (the exact rng
    order sequential blinding used, so deterministic wallets are
    unchanged), but the ``r^e`` blinding masks of each denomination
    run as **one** batched exponentiation before the per-coin
    request/response exchange with the bank.
    """
    if transcript is not None:
        transcript.protocol = transcript.protocol or "withdrawal"
    prepared: list[tuple[int, bytes, bytes, BlindingClient, int]] = []
    for denomination in bank.decompose(amount):
        serial = user.rng.random_bytes(_SERIAL_SIZE)
        payload = coin_payload(serial, denomination)
        client = BlindingClient(bank.public_key(denomination), rng=user.rng)
        factor = client.draw_blinding_factor()
        prepared.append((denomination, serial, payload, client, factor))
    # One powmod_base_list per denomination key (coins of one
    # withdrawal usually share a denomination, so usually one total).
    by_denomination: dict[int, list[int]] = {}
    for position, (denomination, *_rest) in enumerate(prepared):
        by_denomination.setdefault(denomination, []).append(position)
    blinded_states: list = [None] * len(prepared)
    for denomination, positions in by_denomination.items():
        results = blind_with_factors(
            [(prepared[i][2], prepared[i][4]) for i in positions],
            bank.public_key(denomination),
        )
        for position, result in zip(positions, results):
            blinded_states[position] = result
    coins: list[Coin] = []
    for (denomination, serial, _payload, client, _factor), (blinded, state) in zip(
        prepared, blinded_states
    ):
        if transcript is not None:
            transcript.add(
                "withdraw-request",
                "user",
                "bank",
                {"account": user.bank_account, "denom": denomination, "blinded": blinded},
            )
        blind_signature = bank.withdraw_blind(
            user.bank_account, denomination, blinded
        )
        if transcript is not None:
            transcript.add("withdraw-response", "bank", "user", {"sig": blind_signature})
        signature = client.unblind(blind_signature, state)
        coin = Coin(serial=serial, value=denomination, signature=signature)
        bank.verify_coin(coin)
        coins.append(coin)
    user.wallet.extend(coins)
    return coins
