"""E-cash withdrawal (the Chaum blind-signature flow).

The bank sees the account being debited and a blinded blob; the coin
serial inside is invisible to it.  When the coin later surfaces at a
deposit, nothing ties it back to this withdrawal — the payment channel
leaks amounts and timing, never identity-to-purchase links.
"""

from __future__ import annotations

from ...crypto.blind_rsa import BlindingClient
from ..messages import Coin, coin_payload
from .base import Transcript

_SERIAL_SIZE = 16


def withdraw_coins(user, bank, amount: int, *, transcript: Transcript | None = None) -> list[Coin]:
    """Withdraw ``amount`` (in credits) as coins into the user's wallet."""
    if transcript is not None:
        transcript.protocol = transcript.protocol or "withdrawal"
    coins: list[Coin] = []
    for denomination in bank.decompose(amount):
        serial = user.rng.random_bytes(_SERIAL_SIZE)
        payload = coin_payload(serial, denomination)
        client = BlindingClient(bank.public_key(denomination), rng=user.rng)
        blinded, state = client.blind(payload)
        if transcript is not None:
            transcript.add(
                "withdraw-request",
                "user",
                "bank",
                {"account": user.bank_account, "denom": denomination, "blinded": blinded},
            )
        blind_signature = bank.withdraw_blind(
            user.bank_account, denomination, blinded
        )
        if transcript is not None:
            transcript.add("withdraw-response", "bank", "user", {"sig": blind_signature})
        signature = client.unblind(blind_signature, state)
        coin = Coin(serial=serial, value=denomination, signature=signature)
        bank.verify_coin(coin)
        coins.append(coin)
    user.wallet.extend(coins)
    return coins
