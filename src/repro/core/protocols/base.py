"""Transcript recording for protocol runs.

A :class:`Transcript` is a list of message records — step name, sender,
receiver, payload size — accumulated while a protocol wrapper runs.
The cost experiments read totals off it; the privacy tests read the
*absence* of fields off the underlying messages themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ... import codec


@dataclass(frozen=True)
class MessageRecord:
    step: str
    sender: str
    receiver: str
    size: int


@dataclass
class Transcript:
    """Recorded messages of one protocol run."""

    protocol: str = ""
    records: list[MessageRecord] = field(default_factory=list)

    def add(self, step: str, sender: str, receiver: str, payload) -> None:
        """Record a message; ``payload`` may be bytes, an int (size), or
        any codec-encodable object (dicts from ``as_dict()``)."""
        if isinstance(payload, int):
            size = payload
        elif isinstance(payload, (bytes, bytearray)):
            size = len(payload)
        else:
            size = len(codec.encode(payload))
        self.records.append(
            MessageRecord(step=step, sender=sender, receiver=receiver, size=size)
        )

    @property
    def message_count(self) -> int:
        return len(self.records)

    @property
    def total_bytes(self) -> int:
        return sum(record.size for record in self.records)

    def bytes_sent_by(self, sender: str) -> int:
        return sum(r.size for r in self.records if r.sender == sender)

    def steps(self) -> list[str]:
        return [record.step for record in self.records]

    def summary(self) -> dict:
        return {
            "protocol": self.protocol,
            "messages": self.message_count,
            "bytes": self.total_bytes,
        }
