"""Protocol orchestration with measurable transcripts.

Each module runs one of the paper's protocols end to end between actor
objects, recording every message's direction and wire size in a
:class:`~repro.core.protocols.base.Transcript`:

- :mod:`~repro.core.protocols.registration` — enrolment and blind
  pseudonym certification;
- :mod:`~repro.core.protocols.payment` — e-cash withdrawal;
- :mod:`~repro.core.protocols.acquisition` — anonymous purchase;
- :mod:`~repro.core.protocols.access` — local content access;
- :mod:`~repro.core.protocols.transfer` — exchange + redemption (the
  paper's unlinkable transfer);
- :mod:`~repro.core.protocols.revocation` — misuse reporting and
  verifiable escrow opening.

Experiment E1 wraps these calls in :func:`repro.instrument.measure`
scopes to produce the per-protocol cost table.
"""

from .base import Transcript
from .registration import enrol_user, certify_pseudonym
from .payment import withdraw_coins
from .acquisition import accept_license, build_purchase_request, purchase_content
from .access import render_content
from .transfer import (
    accept_redeemed_license,
    build_redeem_request,
    exchange_for_anonymous,
    redeem_anonymous,
    transfer_license,
)
from .revocation import report_misuse

__all__ = [
    "Transcript",
    "enrol_user",
    "certify_pseudonym",
    "withdraw_coins",
    "accept_license",
    "build_purchase_request",
    "purchase_content",
    "render_content",
    "accept_redeemed_license",
    "build_redeem_request",
    "exchange_for_anonymous",
    "redeem_anonymous",
    "transfer_license",
    "report_misuse",
]
