"""Anonymous content purchase — the paper's licence acquisition protocol.

What crosses the wire, and what each side learns::

    user → provider : PurchaseRequest
                        { content id, pseudonym certificate,
                          coins, nonce, timestamp, Schnorr signature }
    provider → user : PersonalLicense
    provider → user : ContentPackage       (public download)

The provider learns: *some enrolled user* bought content X at time t
under pseudonym P, paying with valid coins.  It does not learn who —
the certificate is blind-issued, the coins are blind-signed, and with
the fresh-pseudonym policy P never appears twice.
"""

from __future__ import annotations

from ..licenses import PersonalLicense
from ..messages import NONCE_SIZE, PurchaseRequest, purchase_signing_payload
from .base import Transcript


def build_purchase_request(
    user, provider, issuer, bank, content_id: str
) -> PurchaseRequest:
    """The user-side half of a purchase: certify, pay, sign.

    Split out from :func:`purchase_content` so a queue of requests can
    be prepared first and submitted together through
    :meth:`~repro.core.actors.provider.ContentProvider.sell_batch`.
    """
    card = user.require_card()
    certificate = user.certificate_for_transaction(issuer)
    price = provider.price(content_id)
    coins = user.coins_for(price, bank)
    nonce = user.rng.random_bytes(NONCE_SIZE)
    at = user.clock.now()
    payload = purchase_signing_payload(
        content_id, certificate.fingerprint, [c.serial for c in coins], nonce, at
    )
    signature = card.sign(certificate.pseudonym, payload)
    return PurchaseRequest(
        content_id=content_id,
        certificate=certificate,
        coins=tuple(coins),
        nonce=nonce,
        at=at,
        signature=signature,
    )


def accept_license(user, provider, request: PurchaseRequest, license_) -> None:
    """The user-side close of a purchase: verify and store the licence."""
    license_.verify(provider.license_key)
    if license_.holder_fingerprint != request.certificate.fingerprint:
        from ...errors import ProtocolError

        raise ProtocolError("provider issued licence to a different pseudonym")
    user.add_license(license_)


def purchase_content(
    user,
    provider,
    issuer,
    bank,
    content_id: str,
    *,
    transcript: Transcript | None = None,
) -> PersonalLicense:
    """Run the full purchase; returns the verified licence."""
    if transcript is not None:
        transcript.protocol = transcript.protocol or "purchase"
    request = build_purchase_request(user, provider, issuer, bank, content_id)
    if transcript is not None:
        transcript.add("purchase-request", "user", "provider", request.as_dict())

    license_ = provider.sell(request)

    accept_license(user, provider, request, license_)
    if transcript is not None:
        transcript.add("license", "provider", "user", license_.as_dict())
    return license_
