"""Enrolment and blind pseudonym certification.

Enrolment is the single identified step of a user's life in the
system: the issuer verifies who they are and personalizes a smart
card.  Everything after runs on pseudonyms.

Certification is where the blind signature earns its keep.  The card
mints a pseudonym and escrows its identity tag; the *user agent*
blinds the certificate payload; the issuer authenticates the **card**
(enrolled, not blocked) and signs without seeing the payload; the
agent unblinds and verifies.  Outcome: a certificate that proves
enrolment, opens on misuse, and that even its issuer cannot recognize.
"""

from __future__ import annotations

from ...crypto.blind_rsa import BlindingClient
from ..certificates import PseudonymCertificate, pseudonym_certificate_payload
from .base import Transcript


def enrol_user(user, issuer, *, transcript: Transcript | None = None):
    """Run enrolment; attaches the personalized card to the user agent."""
    card = issuer.enrol(user.user_id, display_name=user.user_id)
    user.attach_card(card)
    if transcript is not None:
        transcript.protocol = transcript.protocol or "registration"
        transcript.add("identify", user.user_id, "issuer", user.user_id.encode())
        transcript.add("card", "issuer", user.user_id, card.card_id)
    return card


def certify_pseudonym(user, issuer, *, transcript: Transcript | None = None) -> PseudonymCertificate:
    """Run blind certification; returns (and stores) the new certificate."""
    card = user.require_card()
    pseudonym = card.new_pseudonym()
    escrow = card.make_escrow(pseudonym, issuer.escrow_key)
    payload = pseudonym_certificate_payload(pseudonym, escrow)

    # Blinding happens in the user's *agent software*, not on the card —
    # the blinding factor never needs card protection.
    client = BlindingClient(issuer.certificate_key, rng=user.rng)
    blinded, state = client.blind(payload)
    if transcript is not None:
        transcript.protocol = transcript.protocol or "certification"
        transcript.add(
            "blind-request",
            "user",
            "issuer",
            {"card": card.card_id, "blinded": blinded},
        )
    blind_signature = issuer.issue_blind_certificate(card.card_id, blinded)
    if transcript is not None:
        transcript.add("blind-signature", "issuer", "user", {"sig": blind_signature})
    signature = client.unblind(blind_signature, state)

    certificate = PseudonymCertificate(
        pseudonym=pseudonym, escrow=escrow, signature=signature
    )
    # The payload was already canonically encoded for blinding; seed the
    # certificate's memo so verifiers do not re-encode it.
    object.__setattr__(certificate, "_signed_payload", payload)
    certificate.verify(issuer.certificate_key)
    user.add_certificate(certificate)
    return certificate
