"""Misuse reporting and verifiable anonymity revocation.

The flow the paper sketches, made concrete:

1. the provider's redeem handler detects a double redemption and
   raises :class:`~repro.errors.DoubleRedemptionError` carrying
   :class:`~repro.core.messages.MisuseEvidence` (both transcripts);
2. :func:`report_misuse` ships the evidence to the TTP;
3. the TTP re-verifies every signature in the evidence, opens the
   offender's escrow, blocks the account and returns a
   :class:`~repro.core.actors.issuer.RevocationResult` whose
   Chaum–Pedersen opening proof **anyone can audit** against the
   offender's certificate — a TTP cannot quietly frame a user.
"""

from __future__ import annotations

from ..escrow import verify_opening
from ..messages import MisuseEvidence, parse_redemption_transcript
from .base import Transcript


def report_misuse(
    provider,
    issuer,
    evidence: MisuseEvidence,
    *,
    transcript: Transcript | None = None,
):
    """Hand evidence to the TTP; returns the audited revocation result."""
    if transcript is not None:
        transcript.protocol = transcript.protocol or "revocation"
        transcript.add("evidence", "provider", "issuer", evidence.as_dict())
    result = issuer.open_misuse_evidence(evidence)
    if transcript is not None:
        transcript.add(
            "revocation-result",
            "issuer",
            "provider",
            {
                "user": result.offender_user_id,
                "opening": result.opening.as_dict(),
            },
        )
    # Public auditability: re-verify the opening proof the way any
    # third party could, against the offender's own certificate.
    offender_cert = parse_redemption_transcript(evidence.second_transcript)["cert"]
    verify_opening(offender_cert.escrow, result.opening, issuer.escrow_key)
    return result
