"""The P2DRM core: the paper's contribution, on top of the substrates.

Layout mirrors the protocol roles of the 2004 paper:

- :mod:`repro.core.identity` — smart cards and pseudonyms;
- :mod:`repro.core.escrow` — verifiable identity escrow (revocable
  anonymity);
- :mod:`repro.core.certificates` — the small PKI: compliance authority,
  device certificates, blind-issued pseudonym certificates;
- :mod:`repro.core.licenses` — personalized and anonymous licences;
- :mod:`repro.core.content` — content packaging under content keys;
- :mod:`repro.core.messages` — wire messages with canonical signing
  payloads;
- :mod:`repro.core.actors` — SmartCardIssuer (TTP), ContentProvider,
  UserAgent, CompliantDevice, Bank;
- :mod:`repro.core.protocols` — orchestrated protocol runs with
  transcripts (registration, payment, acquisition, access, transfer,
  revocation);
- :mod:`repro.core.system` — one-call construction of a full
  deployment for examples, tests and simulation.
"""

from .identity import Pseudonym, SmartCard
from .escrow import IdentityEscrow, EscrowOpening
from .certificates import (
    CertificateAuthority,
    DeviceCertificate,
    PseudonymCertificate,
)
from .licenses import AnonymousLicense, PersonalLicense
from .content import ContentPackage, pack_content, unpack_content
from .system import Deployment, build_deployment

__all__ = [
    "Pseudonym",
    "SmartCard",
    "IdentityEscrow",
    "EscrowOpening",
    "CertificateAuthority",
    "DeviceCertificate",
    "PseudonymCertificate",
    "PersonalLicense",
    "AnonymousLicense",
    "ContentPackage",
    "pack_content",
    "unpack_content",
    "Deployment",
    "build_deployment",
]
