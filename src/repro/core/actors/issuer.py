"""The smart card issuer — the system's trusted third party.

Three duties, strictly separated in the paper's trust model:

1. **Enrolment** — identify the user once, personalize a smart card,
   record the card's identity tag.  This is the only step where a
   real identity meets the system.

2. **Blind pseudonym certification** — sign pseudonym certificates
   *blindly*.  The issuer authenticates the card (an enrolled, active
   account) but cannot see the pseudonym or escrow it is signing, so
   even the issuer cannot map pseudonyms to users afterwards.  What
   keeps blind signing from being a blank cheque is the smart card:
   the card (trusted hardware in the paper) only submits well-formed
   certificate payloads carrying its own true escrow.

3. **Anonymity revocation** — given verifiable misuse evidence (two
   conflicting redemption transcripts for one token), open the
   cheater's escrow, identify and block the account, and emit a
   Chaum–Pedersen opening proof so the de-anonymization itself is
   auditable.  Evidence is fully re-verified first; bad evidence opens
   nothing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...clock import Clock
from ...crypto.blind_rsa import BlindSigner
from ...crypto.elgamal import ElGamalPrivateKey, ElGamalPublicKey, generate_elgamal_key
from ...crypto.groups import PrimeGroup
from ...crypto.rand import RandomSource
from ...crypto.rsa import RsaPublicKey, generate_rsa_key
from ...crypto.schnorr import batch_verify
from ...errors import AuthenticationError, EscrowError
from ...storage.accounts import STATUS_ACTIVE, STATUS_BLOCKED, AccountStore
from ...storage.audit import AuditLog
from ...storage.engine import Database
from ..escrow import EscrowOpening, open_escrow, verify_opening
from ..identity import SmartCard
from ..messages import MisuseEvidence, parse_redemption_transcript, redeem_signing_payload


@dataclass(frozen=True)
class RevocationResult:
    """Outcome of opening misuse evidence: who, with proof."""

    token_id: bytes
    kind: str
    offender_user_id: str
    offender_pseudonym_fingerprint: bytes
    opening: EscrowOpening
    blocked: bool


class SmartCardIssuer:
    """Enrolment authority, blind certifier, and escrow opener."""

    def __init__(
        self,
        group: PrimeGroup,
        *,
        rng: RandomSource,
        clock: Clock,
        db: Database | None = None,
        cert_key_bits: int = 1024,
        authority_key: RsaPublicKey | None = None,
    ):
        self.group = group
        self._rng = rng
        self._clock = clock
        database = db or Database()
        self._accounts = AccountStore(database)
        self._audit = AuditLog(database)
        self._cert_signer = BlindSigner(
            generate_rsa_key(cert_key_bits, rng=rng.fork("issuer-cert-key"))
        )
        self._escrow_key: ElGamalPrivateKey = generate_elgamal_key(
            group, rng=rng.fork("issuer-escrow-key")
        )
        # Compliance-authority root baked into cards at personalization.
        self._authority_key = authority_key
        # Hot-path exponentiation tables: the generator serves every
        # protocol, and the escrow key is raised to a fresh exponent by
        # every certified pseudonym (cards share these tables through
        # the process-wide fastexp registry).
        group.precompute_generator()
        self._escrow_key.public_key.precompute()

    # -- public keys ----------------------------------------------------------

    @property
    def certificate_key(self) -> RsaPublicKey:
        """Verification key for pseudonym certificates."""
        return self._cert_signer.public_key

    @property
    def escrow_key(self) -> ElGamalPublicKey:
        """Public half of the escrow key (cards encrypt tags to it)."""
        return self._escrow_key.public_key

    @property
    def audit_log(self) -> AuditLog:
        return self._audit

    @property
    def accounts(self) -> AccountStore:
        return self._accounts

    # -- enrolment --------------------------------------------------------------

    def enrol(self, user_id: str, *, display_name: str = "") -> SmartCard:
        """Identify a user, personalize and hand over a smart card."""
        card_id = self._rng.random_bytes(16)
        card = SmartCard(
            card_id,
            self.group,
            rng=self._rng.fork(f"card-{card_id.hex()}"),
            authority_key=self._authority_key,
        )
        self._accounts.enrol(
            user_id,
            card_id=card_id,
            identity_tag=card.identity_tag_bytes,
            enrolled_at=self._clock.now(),
            display_name=display_name,
        )
        self._audit.append(
            at=self._clock.now(),
            actor="issuer",
            event="user_enrolled",
            payload={"card": card_id},
        )
        return card

    # -- blind certification -------------------------------------------------------

    def issue_blind_certificate(self, card_id: bytes, blinded: int) -> int:
        """Blind-sign a pseudonym-certificate request from an enrolled card.

        The audit entry records *that* this card obtained a credential
        and when — never which pseudonym, because the issuer cannot
        know.  (Experiment E8's attacker uses exactly these timing
        records.)
        """
        return self.issue_blind_certificates(card_id, [blinded])[0]

    def issue_blind_certificates(
        self, card_id: bytes, blinded_values: list[int]
    ) -> list[int]:
        """Blind-sign a queue of certificate requests from one card.

        The enrolment/status lookup is paid once for the whole queue —
        the natural shape for agents that stock up on pseudonym
        credentials in advance (see
        :meth:`~repro.core.actors.user.UserAgent.prepare_certificate`).
        Each certification still gets its own audit entry: batching is
        an efficiency detail and must not change what the timing-join
        experiments can observe.
        """
        account = self._accounts.by_card(card_id)
        if account is None:
            raise AuthenticationError("unknown card")
        if account.status != STATUS_ACTIVE:
            raise AuthenticationError(f"card blocked ({account.status})")
        signatures = [
            self._cert_signer.sign_blinded(blinded) for blinded in blinded_values
        ]
        for _ in signatures:
            self._audit.append(
                at=self._clock.now(),
                actor="issuer",
                event="pseudonym_certified",
                payload={"card": card_id},
            )
        return signatures

    # -- anonymity revocation ----------------------------------------------------------

    def open_misuse_evidence(self, evidence: MisuseEvidence) -> RevocationResult:
        """Verify evidence, open the offending escrow, block the account.

        The *second* transcript is the redemption that hit an already-
        spent token — its pseudonym is the provable cheater (the first
        redeemer may be an innocent downstream recipient).  Raises
        :class:`~repro.errors.EscrowError` if anything fails to verify.
        """
        first = parse_redemption_transcript(evidence.first_transcript)
        second = parse_redemption_transcript(evidence.second_transcript)
        # Evidence must be two *distinct* redemption attempts.
        if evidence.first_transcript == evidence.second_transcript:
            raise EscrowError("evidence transcripts are identical")
        signature_items = []
        for transcript in (first, second):
            certificate = transcript["cert"]
            certificate.verify(self.certificate_key)
            payload = redeem_signing_payload(
                evidence.token_id,
                certificate.fingerprint,
                transcript["nonce"],
                transcript["at"],
            )
            signature_items.append(
                (certificate.pseudonym.signing_key, payload, transcript["sig"])
            )
        try:
            batch_verify(signature_items, rng=self._rng)
        except Exception as exc:
            raise EscrowError(f"evidence transcript signature invalid: {exc}") from exc

        offender_cert = second["cert"]
        opening = open_escrow(
            offender_cert.escrow, self._escrow_key, rng=self._rng
        )
        # Self-audit the opening the way any outsider could.
        verify_opening(offender_cert.escrow, opening, self.escrow_key)
        account = self._accounts.by_identity_tag(opening.tag_bytes)
        if account is None:
            raise EscrowError("escrow opened to an unknown identity tag")
        blocked = account.status == STATUS_ACTIVE
        if blocked:
            self._accounts.set_status(account.user_id, STATUS_BLOCKED)
        self._audit.append(
            at=self._clock.now(),
            actor="issuer",
            event="escrow_opened",
            payload={
                "token": evidence.token_id,
                "kind": evidence.kind,
                "card": account.card_id,
            },
        )
        return RevocationResult(
            token_id=evidence.token_id,
            kind=evidence.kind,
            offender_user_id=account.user_id,
            offender_pseudonym_fingerprint=offender_cert.fingerprint,
            opening=opening,
            blocked=blocked,
        )
