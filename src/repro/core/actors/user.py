"""The user agent: card, wallet, licences, pseudonym policy.

Everything a user does goes through here.  The privacy-relevant policy
decisions live in this class and are deliberately explicit:

- **fresh pseudonym per transaction** (default): every purchase and
  every redemption happens under a newly certified pseudonym, so the
  provider cannot link two of the user's actions;
- **reused pseudonym** mode exists as a knob because experiment E8
  quantifies exactly what reuse costs in linkability.

The agent talks to the other actors through the protocol wrappers in
:mod:`repro.core.protocols`, which also record transcripts for the
cost experiments.
"""

from __future__ import annotations

from ...crypto.rand import RandomSource
from ...errors import ProtocolError
from ..identity import SmartCard
from ..certificates import PseudonymCertificate
from ..licenses import AnonymousLicense, PersonalLicense
from ..messages import Coin


class UserAgent:
    """One user's software agent."""

    def __init__(
        self,
        user_id: str,
        *,
        rng: RandomSource,
        clock=None,
        fresh_pseudonym_per_transaction: bool = True,
    ):
        from ...clock import SystemClock

        self.user_id = user_id
        self.rng = rng
        self.clock = clock if clock is not None else SystemClock()
        self.card: SmartCard | None = None
        self.certificates: dict[bytes, PseudonymCertificate] = {}
        self.licenses: dict[bytes, PersonalLicense] = {}
        self.wallet: list[Coin] = []
        self.bank_account = f"user-{user_id}"
        self.fresh_pseudonym_per_transaction = fresh_pseudonym_per_transaction
        self._last_certificate: PseudonymCertificate | None = None
        self._prepared: list[PseudonymCertificate] = []

    # -- card ------------------------------------------------------------------

    def attach_card(self, card: SmartCard) -> None:
        if self.card is not None:
            raise ProtocolError("user already holds a card")
        self.card = card

    def require_card(self) -> SmartCard:
        if self.card is None:
            raise ProtocolError(f"user {self.user_id!r} is not enrolled")
        return self.card

    # -- pseudonym certificates ---------------------------------------------------

    def add_certificate(self, certificate: PseudonymCertificate) -> None:
        self.certificates[certificate.fingerprint] = certificate
        self._last_certificate = certificate

    def prepare_certificate(self, issuer) -> PseudonymCertificate:
        """Pre-fetch a certificate for later use.

        Decoupling certification time from transaction time is the
        cheap defence against the issuer–provider timing join
        (experiment E7 quantifies it); agents that expect to transact
        can stock up on credentials in advance.
        """
        from ..protocols.registration import certify_pseudonym

        certificate = certify_pseudonym(self, issuer)
        self._prepared.append(certificate)
        return certificate

    def certificate_for_transaction(self, issuer) -> PseudonymCertificate:
        """The certificate to act under, per the pseudonym policy.

        Order of preference: a pre-fetched certificate; a freshly
        certified one (fresh-per-transaction policy); the newest
        existing one (reuse policy).
        """
        from ..protocols.registration import certify_pseudonym

        if self._prepared:
            return self._prepared.pop(0)
        if self.fresh_pseudonym_per_transaction or self._last_certificate is None:
            return certify_pseudonym(self, issuer)
        return self._last_certificate

    # -- wallet ----------------------------------------------------------------------

    def coins_for(self, amount: int, bank) -> list[Coin]:
        """Pick coins covering ``amount`` exactly, withdrawing if short."""
        from ..protocols.payment import withdraw_coins

        needed = bank.decompose(amount)
        chosen: list[Coin] = []
        pool = list(self.wallet)
        for denomination in needed:
            match = next((c for c in pool if c.value == denomination), None)
            if match is None:
                chosen = []
                break
            pool.remove(match)
            chosen.append(match)
        if not chosen:
            withdraw_coins(self, bank, amount)
            return self.coins_for(amount, bank)
        for coin in chosen:
            self.wallet.remove(coin)
        return chosen

    def wallet_value(self) -> int:
        return sum(coin.value for coin in self.wallet)

    # -- licences ---------------------------------------------------------------------

    def add_license(self, license_: PersonalLicense) -> None:
        self.licenses[license_.license_id] = license_

    def remove_license(self, license_id: bytes) -> PersonalLicense:
        try:
            return self.licenses.pop(license_id)
        except KeyError:
            raise ProtocolError("user does not hold that licence") from None

    def license_for_content(self, content_id: str) -> PersonalLicense:
        for license_ in self.licenses.values():
            if license_.content_id == content_id:
                return license_
        raise ProtocolError(
            f"user {self.user_id!r} holds no licence for {content_id!r}"
        )

    def owns_content(self, content_id: str) -> bool:
        return any(
            license_.content_id == content_id for license_ in self.licenses.values()
        )

    # -- high-level flows (delegate to protocol wrappers) ------------------------------

    def buy(self, content_id: str, *, provider, issuer, bank, transcript=None) -> PersonalLicense:
        """Anonymously purchase ``content_id``; returns the licence."""
        from ..protocols.acquisition import purchase_content

        return purchase_content(
            self, provider, issuer, bank, content_id, transcript=transcript
        )

    def transfer_out(
        self, license_id: bytes, *, provider, restrict_to=None, transcript=None
    ) -> AnonymousLicense:
        """Give up a licence; returns the bearer licence to hand over.

        ``restrict_to`` optionally narrows the rights passed on (a gift
        can be play-only even if the giver held transfer rights).
        """
        from ..protocols.transfer import exchange_for_anonymous

        return exchange_for_anonymous(
            self, provider, license_id, restrict_to=restrict_to, transcript=transcript
        )

    def redeem(self, anonymous: AnonymousLicense, *, provider, issuer, transcript=None) -> PersonalLicense:
        """Redeem a received bearer licence under a fresh pseudonym."""
        from ..protocols.transfer import redeem_anonymous

        return redeem_anonymous(self, provider, issuer, anonymous, transcript=transcript)

    def play(self, content_id: str, device, *, provider, action: str = "play") -> bytes:
        """Render owned content on ``device`` (local access protocol)."""
        from ..protocols.access import render_content

        return render_content(self, device, provider, content_id, action=action)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"UserAgent({self.user_id!r}, licences={len(self.licenses)},"
            f" wallet={self.wallet_value()})"
        )
