"""Compliant rendering devices — where rights meet content.

Access in this system is a **local** protocol: licence, package, card
and device interact with no provider round-trip, which is precisely
the paper's "usage is not observable by the content provider".  The
device's job at render time:

1. verify the licence's provider signature;
2. check the licence against its (signed, synced) revocation view;
3. evaluate the rights expression against its clock/region/usage;
4. have the smart card unwrap the content key — which the card only
   does after checking *this device's* compliance certificate;
5. decrypt, "render", and persist the usage counter.

A device that skips steps 1–3 gains nothing: step 4 fails without a
valid device certificate, so content stays protected even against a
hacked player (the card/device split carries the enforcement).
"""

from __future__ import annotations

from ...clock import Clock
from ...crypto.rsa import RsaPublicKey
from ...errors import RevokedLicenseError, RightsDenied
from ...rel.evaluator import EvaluationContext, RightsEvaluator
from ...storage.engine import Database
from ...storage.revocation import DeviceRevocationView
from ...storage.usage import UsageStore
from ..certificates import DeviceCertificate
from ..content import ContentPackage, unpack_content
from ..identity import SmartCard
from ..licenses import PersonalLicense


class CompliantDevice:
    """One certified rendering device."""

    def __init__(
        self,
        certificate: DeviceCertificate,
        *,
        clock: Clock,
        provider_license_key: RsaPublicKey,
        region: str = "eu",
        db: Database | None = None,
        lrl_fp_rate: float = 0.01,
    ):
        self.certificate = certificate
        self._clock = clock
        self._provider_key = provider_license_key
        self.region = region
        database = db or Database()
        self._usage_store = UsageStore(database)
        self._evaluator = RightsEvaluator(self._usage_store.load_state())
        self._revocation_view = DeviceRevocationView(
            provider_license_key, fp_rate=lrl_fp_rate
        )

    @property
    def device_id(self) -> str:
        return self.certificate.device_id

    @property
    def revocation_version(self) -> int:
        return self._revocation_view.version

    @property
    def revocation_view(self) -> DeviceRevocationView:
        return self._revocation_view

    # -- revocation sync ----------------------------------------------------

    def sync_revocations(self, provider) -> int:
        """Pull the LRL delta from the provider; returns entries applied.

        Resumes from the opaque cursor the previous sync returned (an
        int version against the in-process provider, a per-shard tuple
        against the service surfaces) — the exact indexed delta, no
        overlap redelivery.
        """
        entries, snapshot, cursor = provider.revocation_sync(
            self._revocation_view.cursor
        )
        return self._revocation_view.apply_sync(entries, snapshot, cursor)

    # -- rendering ------------------------------------------------------------

    def render(
        self,
        license_: PersonalLicense,
        package: ContentPackage,
        card: SmartCard,
        *,
        action: str = "play",
        use_bloom: bool = True,
    ) -> bytes:
        """Enforce and render; returns the clear media payload.

        Raises :class:`~repro.errors.InvalidSignature`,
        :class:`~repro.errors.RevokedLicenseError`,
        :class:`~repro.errors.RightsDenied`,
        :class:`~repro.errors.ComplianceError` (card refuses a bad
        device) or :class:`~repro.errors.DecryptionError` on a
        package/licence mismatch.
        """
        license_.verify(self._provider_key)
        if package.content_id != license_.content_id:
            raise RightsDenied(action, "licence does not cover this package")
        revoked = (
            self._revocation_view.check(license_.license_id)
            if use_bloom
            else self._revocation_view.check_exact_only(license_.license_id)
        )
        if revoked:
            raise RevokedLicenseError(
                f"licence {license_.license_id.hex()[:16]} is revoked"
            )
        context = EvaluationContext(
            now=self._clock.now(), device_id=self.device_id, region=self.region
        )
        self._evaluator.authorize(
            license_.rights, license_.license_id, action, context
        )
        content_key = card.unwrap_content_key(
            license_.pseudonym,
            license_.wrapped_key,
            context=license_.kem_context(),
            device_certificate=self.certificate,
        )
        payload = unpack_content(package, content_key)
        # Only a fully successful render consumes a use.
        self._evaluator.record_use(license_.license_id, action)
        self._usage_store.record_use(license_.license_id, action)
        return payload

    # -- diagnostics -----------------------------------------------------------

    def remaining_uses(self, license_: PersonalLicense, action: str) -> int | None:
        return self._evaluator.remaining_uses(
            license_.rights, license_.license_id, action
        )

    def usage_events(self) -> int:
        return self._usage_store.total_events()


class NonCompliantDevice:
    """A hacked player for the security tests: performs **no** checks.

    It forwards the unwrap request to the card without a certificate —
    the card refuses, demonstrating that enforcement survives a rogue
    device.  (If handed a clear content key it will happily "render",
    which is the correct model: DRM protects keys, not physics.)
    """

    def __init__(self, *, clock: Clock):
        self._clock = clock

    def render(
        self,
        license_: PersonalLicense,
        package: ContentPackage,
        card: SmartCard,
        *,
        action: str = "play",
    ) -> bytes:
        content_key = card.unwrap_content_key(
            license_.pseudonym,
            license_.wrapped_key,
            context=license_.kem_context(),
            device_certificate=None,  # nothing to show
        )
        return unpack_content(package, content_key)
