"""The content provider: anonymous sales, transfers, revocation.

The provider enforces DRM while learning as little as the paper
allows.  Its whole view of the world is pseudonyms, coins and token
ids — every handler here verifies cryptographic statements instead of
identities:

- :meth:`ContentProvider.sell` — anonymous purchase: verify the blind-
  issued pseudonym certificate, the request signature, and the coins;
  issue a personalized licence wrapping ``K_C`` to the pseudonym.

- :meth:`ContentProvider.exchange` — the transfer protocol's first
  half: the holder gives up a personalized licence; it goes on the
  revocation list and an **anonymous licence** (fresh unique token id,
  no holder) comes back.

- :meth:`ContentProvider.redeem` — the second half: a fresh pseudonym
  presents the anonymous licence; the spent-token store admits each
  token exactly once, and the second presentation of a token yields
  :class:`~repro.errors.DoubleRedemptionError` carrying verifiable
  :class:`~repro.core.messages.MisuseEvidence` for the TTP.

The provider is modelled **honest-but-curious**: every event it can
see lands in its audit log with timestamps, and the analysis package
later mines that log exactly like a curious operator would.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ... import codec
from ...clock import Clock
from ...crypto.hashes import sha256
from ...crypto.rand import RandomSource
from ...crypto.rsa import RsaPrivateKey, RsaPublicKey, generate_rsa_key
from ...errors import (
    AuthenticationError,
    DoubleRedemptionError,
    PaymentError,
    ProtocolError,
    RevokedLicenseError,
    UnknownContentError,
)
from ...rel.serializer import rights_to_text
from ...storage import licenses as license_store
from ...storage.audit import AuditLog
from ...storage.contents import CatalogEntry, ContentStore
from ...storage.engine import Database
from ...storage.licenses import LicenseStore
from ...storage.revocation import RevocationList, SignedSnapshot, RevocationEntry
from ...storage.spent_tokens import SpentTokenStore
from ..content import ContentPackage, pack_content
from ..licenses import (
    LICENSE_ID_SIZE,
    AnonymousLicense,
    PersonalLicense,
    kem_context,
    sign_anonymous_license,
    sign_personal_license,
)
from ..messages import (
    ExchangeRequest,
    MisuseEvidence,
    PurchaseRequest,
    RedeemRequest,
    redemption_transcript,
)

#: Tolerated clock skew between a request timestamp and the provider clock.
REQUEST_FRESHNESS_WINDOW = 24 * 3600


@dataclass
class ProviderStores:
    """The provider's six stores, bundled so deployments can swap them.

    The default bundle (:func:`build_provider_stores`) puts every store
    in one in-process database; the service layer substitutes sharded
    views over per-shard files so many worker processes can run the
    same :class:`ContentProvider` code against shared state.
    """

    contents: ContentStore
    licenses: LicenseStore
    revocations: RevocationList
    spent_tokens: SpentTokenStore
    request_nonces: SpentTokenStore
    audit: AuditLog


def build_provider_stores(database: Database) -> ProviderStores:
    """The classic single-database store bundle."""
    return ProviderStores(
        contents=ContentStore(database),
        licenses=LicenseStore(database),
        revocations=RevocationList(database),
        spent_tokens=SpentTokenStore(database, "anon-license"),
        request_nonces=SpentTokenStore(database, "request-nonce"),
        audit=AuditLog(database),
    )


class ContentProvider:
    """Catalog, licence issuance and the transfer machinery."""

    def __init__(
        self,
        *,
        rng: RandomSource,
        clock: Clock,
        issuer_certificate_key: RsaPublicKey,
        bank,
        db: Database | None = None,
        stores: ProviderStores | None = None,
        license_key: RsaPrivateKey | None = None,
        license_key_bits: int = 1024,
        name: str = "content-provider",
        bank_account: str | None = None,
        deterministic_issuance: bool = False,
    ):
        self.name = name
        self._rng = rng
        self._clock = clock
        self._issuer_key = issuer_certificate_key
        self._bank = bank
        if stores is None:
            stores = build_provider_stores(db or Database())
        self._contents = stores.contents
        self._licenses = stores.licenses
        self._revocations = stores.revocations
        self._spent_tokens = stores.spent_tokens
        self._request_nonces = stores.request_nonces
        self._audit = stores.audit
        #: When set, every issued licence's identifier, KEM ephemeral
        #: and timestamp derive from the *request* (rng forked from the
        #: signed payload digest, timestamp from the signed ``at``)
        #: instead of from the provider's mutable rng/clock state.  The
        #: output then depends only on (provider keys, request bytes) —
        #: which is what lets N worker processes, in any interleaving,
        #: produce byte-identical licences to the in-process desk.
        self.deterministic_issuance = deterministic_issuance
        #: Optional batch-pipeline timing hook (the service workers
        #: install one per batch): a callable receiving one
        #: ``(op, stage, start_monotonic, duration, n)`` tuple per
        #: pipeline stage.  ``None`` — the default — costs one
        #: attribute read per stage and nothing else; the provider
        #: itself never records timings.
        self.stage_hook = None
        #: Optional ``concurrent.futures`` executor for the *per-item*
        #: arms of the batch screening stages (re-verifying members
        #: after an aggregate check fails).  Those arms are pure
        #: verification — no store writes, no rng, no clock — so
        #: fanning them across threads is byte-identical to the serial
        #: loop; it pays only under an arithmetic backend whose modular
        #: exponentiation releases the GIL (gmpy2).  The stateful
        #: stages (precheck, nonces, finalize) never use it.  The
        #: service workers install one when
        #: ``ServiceConfig.screening_threads > 0``.
        self.screening_executor = None
        if license_key is None:
            # Three-prime key (RFC 8017 multi-prime): licence signing is
            # the one RSA private operation on the sell/redeem hot path
            # that no batch check amortizes, and the narrower CRT primes
            # make it ~2x cheaper at the same modulus size.
            license_key = generate_rsa_key(
                license_key_bits, rng=rng.fork("provider-license-key"), prime_count=3
            )
        self._license_key = license_key
        self._bank_account = bank_account or f"{name}-account"
        if bank is not None:
            bank.open_account(self._bank_account)

    # -- public surface ----------------------------------------------------

    @property
    def license_key(self) -> RsaPublicKey:
        """Licence/LRL-snapshot verification key (devices pin this)."""
        return self._license_key.public_key

    @property
    def audit_log(self) -> AuditLog:
        return self._audit

    @property
    def license_register(self) -> LicenseStore:
        return self._licenses

    @property
    def revocation_list(self) -> RevocationList:
        return self._revocations

    # -- catalog ------------------------------------------------------------

    def publish(
        self,
        content_id: str,
        payload: bytes,
        *,
        title: str = "",
        price: int = 1,
        media_type: str = "application/octet-stream",
        rights_template: str | None = None,
    ) -> ContentPackage:
        """Package and list a content item (price in credits).

        ``rights_template`` is the rights expression every buyer of this
        item receives (e.g. a rental:
        ``"play[count<=3, before=...]"``); default is unlimited
        play/display plus one transfer.
        """
        from ...storage.contents import DEFAULT_RIGHTS_TEMPLATE

        package, content_key = pack_content(
            content_id,
            payload,
            title=title,
            media_type=media_type,
            rng=self._rng,
        )
        self._contents.add(
            content_id,
            title=title,
            price_cents=price,
            added_at=self._clock.now(),
            package=package.to_bytes(),
            content_key=content_key,
            rights_template=rights_template or DEFAULT_RIGHTS_TEMPLATE,
        )
        return package

    def catalog(self) -> list[CatalogEntry]:
        return self._contents.catalog()

    def price(self, content_id: str) -> int:
        return self._contents.price(content_id)

    def download(self, content_id: str) -> ContentPackage:
        """Anyone may download the encrypted package — no authentication,
        which is itself part of the privacy story."""
        return ContentPackage.from_bytes(self._contents.package(content_id))

    # -- purchase ------------------------------------------------------------

    def sell(self, request: PurchaseRequest) -> PersonalLicense:
        """Anonymous purchase handler.

        Raises :class:`~repro.errors.AuthenticationError`,
        :class:`~repro.errors.PaymentError`,
        :class:`~repro.errors.DoubleSpendError` or
        :class:`~repro.errors.UnknownContentError` as appropriate; on
        success returns the signed personalized licence.
        """
        self._presell_checks(request)
        return self._finalize_sale(request)

    def _mark_stage(self, op: str, stage: str, start: float, n: int) -> None:
        """Report one batch-pipeline stage to :attr:`stage_hook`."""
        hook = self.stage_hook
        if hook is not None:
            hook((op, stage, start, time.monotonic() - start, n))

    def _screen_items(self, item_check, items: list) -> list:
        """Run a pure per-item verification over ``items``.

        Returns a list aligned with ``items``: ``None`` where the check
        passed, the raised exception where it failed.  With
        :attr:`screening_executor` installed the checks run across its
        threads via an order-preserving ``map`` — same outcomes in the
        same slots as the serial loop, just wall-clock-overlapped.
        """

        def _arm(item):
            try:
                item_check(item)
            except Exception as exc:
                return exc
            return None

        pool = self.screening_executor
        if pool is None:
            return [_arm(item) for item in items]
        return list(pool.map(_arm, items))

    def sell_batch(self, requests: list[PurchaseRequest]) -> list:
        """Validate and fulfil a queue of purchase requests together.

        The Schnorr request signatures of the whole queue are verified
        in one batch
        (:func:`~repro.crypto.schnorr.batch_verify` — small-random-
        exponent aggregation, ~one full-size exponentiation instead of
        two per request) and coin deposits are batched per request, so
        a loaded provider validates a burst of purchases far cheaper
        than one at a time.

        Queue semantics: one bad request must not poison the batch.
        Returns a list aligned with ``requests`` where each entry is
        either the issued :class:`~repro.core.licenses.PersonalLicense`
        or the exception that rejected that request.
        """
        from ...crypto.schnorr import batch_verify

        requests = list(requests)
        results: list = [None] * len(requests)
        pending: list[int] = []
        stage_start = time.monotonic()
        for index, request in enumerate(requests):
            try:
                self._presell_checks(request, check_signature=False)
            except Exception as exc:
                results[index] = exc
            else:
                pending.append(index)
        self._mark_stage("sell", "precheck", stage_start, len(requests))

        def _signature_item(request: PurchaseRequest):
            return (
                request.certificate.pseudonym.signing_key,
                request.signing_payload(),
                request.signature,
            )

        stage_start = time.monotonic()
        try:
            batch_verify(
                [_signature_item(requests[index]) for index in pending],
                rng=self._rng,
            )
        except Exception:
            # At least one bad signature: re-check individually so only
            # the offenders are rejected (threaded when a screening
            # executor is installed — the checks are pure).
            def _check_signature(request: PurchaseRequest) -> None:
                key, payload, signature = _signature_item(request)
                try:
                    key.verify(payload, signature)
                except Exception as exc:
                    raise AuthenticationError(
                        f"request signature invalid: {exc}"
                    ) from exc

            survivors: list[int] = []
            outcomes = self._screen_items(
                _check_signature, [requests[index] for index in pending]
            )
            for index, outcome in zip(pending, outcomes):
                if outcome is None:
                    survivors.append(index)
                else:
                    results[index] = outcome
            pending = survivors
        self._mark_stage("sell", "schnorr", stage_start, len(pending))

        stage_start = time.monotonic()
        for index in pending:
            try:
                results[index] = self._finalize_sale(requests[index])
            except Exception as exc:
                results[index] = exc
        self._mark_stage("sell", "finalize", stage_start, len(pending))
        return results

    def _presell_checks(
        self, request: PurchaseRequest, *, check_signature: bool = True
    ) -> None:
        """Everything `sell` validates before money moves."""
        if not self._contents.exists(request.content_id):
            raise UnknownContentError(f"content {request.content_id!r} not in catalog")
        self._verify_request_envelope(
            certificate=request.certificate,
            signature=request.signature,
            payload=request.signing_payload(),
            nonce=request.nonce,
            at=request.at,
            check_signature=check_signature,
        )

    def _request_entropy(self, request) -> tuple[RandomSource, int]:
        """The (rng, timestamp) pair issuance draws from for ``request``.

        Default: the provider's own rng stream and clock.  Under
        :attr:`deterministic_issuance` both derive from the request —
        the rng forked by the digest of the signed payload (unique per
        request: the payload binds the nonce) and the timestamp from
        the signed ``at`` — so the issued licence is a pure function of
        the request and the provider's keys, independent of queue
        order, batch boundaries, or which worker process handles it.
        """
        if not self.deterministic_issuance:
            return self._rng, self._clock.now()
        digest = sha256(request.signing_payload())
        return self._rng.fork(f"request:{digest.hex()}"), request.at

    def _finalize_sale(self, request: PurchaseRequest) -> PersonalLicense:
        """Collect payment and issue the licence (after validation)."""
        self._collect_payment(request)
        rights = self._default_rights(request.content_id)
        rng, now = self._request_entropy(request)
        license_ = self._issue_personal(
            content_id=request.content_id,
            rights=rights,
            pseudonym=request.certificate.pseudonym,
            rng=rng,
            now=now,
        )
        self._audit.append(
            at=now,
            actor=self.name,
            event="license_issued",
            payload={
                "license": license_.license_id,
                "content": request.content_id,
                "pseudonym": request.certificate.fingerprint,
            },
        )
        return license_

    def _default_rights(self, content_id: str):
        """The rights this content is sold with (per-content template)."""
        from ...rel.parser import parse_rights

        return parse_rights(self._contents.rights_template(content_id))

    def _collect_payment(self, request: PurchaseRequest) -> None:
        price = self._contents.price(request.content_id)
        total = sum(coin.value for coin in request.coins)
        if total < price:
            raise PaymentError(f"payment {total} below price {price}")
        # The batch desk verifies everything before depositing anything
        # (signatures screened in one RSA operation per denomination),
        # so a failed sale cannot strand a coin half-deposited.
        self._bank.deposit_batch(self._bank_account, list(request.coins))

    # -- exchange: personalized → anonymous -------------------------------------

    def exchange(self, request: ExchangeRequest) -> AnonymousLicense:
        """Trade an active personalized licence for an anonymous one.

        The atomic step is the ACTIVE→EXCHANGED status transition (a
        compare-and-swap on the licence's row): it happens before the
        bearer licence is signed, so the holder can never end up with
        both usable — not even when two workers race the request.  The
        follow-up writes (LRL entry, bearer registration, audit) are
        separate transactions; a crash between the CAS and the
        issuance leaves an EXCHANGED licence with no successor, which
        an operator reconciles from the register (every EXCHANGED
        personal licence must have an anonymous sibling) — the
        cross-shard sequencer on the ROADMAP would close that window.
        """
        record = self._licenses.get(request.license_id)
        if record is None:
            raise ProtocolError("unknown licence")
        if record.kind != license_store.KIND_PERSONAL:
            raise ProtocolError(f"cannot exchange a {record.kind} licence")
        if record.status != license_store.STATUS_ACTIVE:
            raise RevokedLicenseError(f"licence is {record.status}")
        old_license = PersonalLicense.from_dict(codec.decode(record.blob))
        if not old_license.rights.transferable:
            raise ProtocolError("licence rights do not include transfer")
        self._check_nonce(old_license.holder_fingerprint, request.nonce)
        self._check_freshness(request.at)
        try:
            old_license.pseudonym.signing_key.verify(
                request.signing_payload(), request.signature
            )
        except Exception as exc:
            raise AuthenticationError(f"exchange signature invalid: {exc}") from exc

        outgoing_rights = old_license.rights
        if request.restrict_to is not None:
            # Monotone restriction: the giver may narrow, never widen —
            # naming an action the licence does not grant is an error,
            # not a silent drop (explicit beats implicit here: a client
            # that *thinks* it is passing on 'copy' must find out).
            held_actions = {p.action for p in old_license.rights.permissions}
            ungranted = set(request.restrict_to) - held_actions
            if ungranted:
                raise ProtocolError(
                    f"restriction names ungranted actions: {sorted(ungranted)}"
                )
            outgoing_rights = old_license.rights.restricted_to(request.restrict_to)
            if not outgoing_rights.is_subset_of(old_license.rights):
                raise ProtocolError("restriction would widen rights")

        rng, now = self._request_entropy(request)
        # The exactly-once gate: a licence leaves ACTIVE atomically,
        # *before* any bearer licence is minted.  Two workers racing
        # exchange requests for the same licence serialize on this row
        # at its home shard, so exactly one of them ever signs an
        # anonymous licence — the exchange counterpart of the spent-
        # token gate on redemption.
        if not self._licenses.transition(
            request.license_id,
            from_status=license_store.STATUS_ACTIVE,
            to_status=license_store.STATUS_EXCHANGED,
        ):
            current = self._licenses.get(request.license_id)
            status = current.status if current is not None else "unknown"
            raise RevokedLicenseError(f"licence is {status}")
        try:
            # Write order matters for the compensation below: the
            # bearer registration comes LAST, so a failure anywhere in
            # this block implies no redeemable bearer token exists and
            # the CAS can be handed back safely.
            token_id = rng.random_bytes(LICENSE_ID_SIZE)
            anonymous = sign_anonymous_license(
                self._license_key,
                license_id=token_id,
                content_id=old_license.content_id,
                rights=outgoing_rights,
                issued_at=now,
            )
            self._revocations.revoke(request.license_id, at=now, reason="exchanged")
            self._audit.append(
                at=now,
                actor=self.name,
                event="license_exchanged",
                payload={
                    "old_license": request.license_id,
                    "token": token_id,
                    "content": old_license.content_id,
                },
            )
            self._licenses.insert(
                token_id,
                kind=license_store.KIND_ANONYMOUS,
                content_id=old_license.content_id,
                holder=None,
                rights_text=rights_to_text(outgoing_rights),
                issued_at=now,
                blob=codec.encode(anonymous.as_dict()),
            )
        except BaseException:
            # No bearer token was registered (it is the last write),
            # so handing the status back is safe — a transient failure
            # (a busy shard, say) must not burn the holder's licence.
            # If the LRL entry already landed, the licence comes back
            # ACTIVE but revoked-for-playback; retrying the exchange
            # heals that (revoke is idempotent), and an audit entry
            # whose token never reached the register records the
            # aborted attempt.  Best effort: if the compensation
            # itself fails the licence stays EXCHANGED for operator
            # reconciliation, and the original error still propagates.
            try:
                self._licenses.transition(
                    request.license_id,
                    from_status=license_store.STATUS_EXCHANGED,
                    to_status=license_store.STATUS_ACTIVE,
                )
            except Exception:
                pass  # keep the original failure, not the compensation's
            raise
        return anonymous

    # -- redemption: anonymous → personalized --------------------------------------

    def redeem(self, request: RedeemRequest) -> PersonalLicense:
        """Personalize an anonymous licence for a (new) pseudonym.

        Exactly-once: the token id transitions to *spent* atomically.
        A second presentation raises
        :class:`~repro.errors.DoubleRedemptionError` whose ``evidence``
        attribute carries both transcripts for the TTP.
        """
        self._preredeem_checks(request)
        if self._revocations.is_revoked(request.anonymous_license.license_id):
            raise RevokedLicenseError("anonymous licence is revoked")
        return self._finalize_redemption(request)

    def redeem_batch(self, requests: list[RedeemRequest]) -> list:
        """Validate and personalize a queue of bearer licences together.

        The redemption desk under load: every signature family in the
        queue is screened in one aggregated check instead of one chain
        per request —

        - the provider's own licence signatures via PKCS#1 screening
          (:func:`~repro.crypto.rsa.batch_verify_pkcs1`, one RSA public
          operation);
        - the issuer-blind-signed pseudonym certificates plus their
          escrow binding proofs
          (:func:`~repro.core.certificates.batch_verify_certificates`);
        - the Schnorr request envelopes
          (:func:`~repro.crypto.schnorr.batch_verify`);
        - non-revocation with one revocation-list pass
          (:meth:`~repro.storage.revocation.RevocationList.revoked_subset`).

        Queue semantics match :meth:`sell_batch`: one bad request must
        not poison the batch.  Whenever an aggregate check fails, the
        stage re-verifies its members individually so only the
        offenders are rejected.  Returns a list aligned with
        ``requests`` where each entry is either the issued
        :class:`~repro.core.licenses.PersonalLicense` or the exception
        that rejected that request (a
        :class:`~repro.errors.DoubleRedemptionError` entry carries its
        ``evidence`` for the TTP).
        """
        from ...crypto.rsa import batch_verify_pkcs1
        from ...crypto.schnorr import batch_verify
        from ..certificates import batch_verify_certificates

        requests = list(requests)
        results: list = [None] * len(requests)
        pending: list[int] = []
        stage_start = time.monotonic()
        for index, request in enumerate(requests):
            try:
                self._preredeem_checks(
                    request,
                    check_license_signature=False,
                    check_certificate=False,
                    check_nonce=False,
                    check_signature=False,
                )
            except Exception as exc:
                results[index] = exc
            else:
                pending.append(index)
        self._mark_stage("redeem", "precheck", stage_start, len(requests))

        def _screen(indices: list[int], batch_check, item_check) -> list[int]:
            """Run the aggregate check; on failure isolate offenders.

            The per-item arm goes through :meth:`_screen_items`, so an
            installed screening executor overlaps the re-checks.
            """
            if not indices:
                return indices
            try:
                batch_check([requests[index] for index in indices])
            except Exception:
                survivors: list[int] = []
                outcomes = self._screen_items(
                    item_check, [requests[index] for index in indices]
                )
                for index, outcome in zip(indices, outcomes):
                    if outcome is None:
                        survivors.append(index)
                    else:
                        results[index] = outcome
                return survivors
            return indices

        # Stage 1: the provider's own signatures over the bearer
        # licences — one screening op for the whole queue.
        def _check_own_signature(request: RedeemRequest) -> None:
            try:
                request.anonymous_license.verify(self.license_key)
            except Exception as exc:
                raise AuthenticationError(
                    f"anonymous licence invalid: {exc}"
                ) from exc

        stage_start = time.monotonic()
        pending = _screen(
            pending,
            lambda batch: batch_verify_pkcs1(
                [
                    (item.anonymous_license.payload(), item.anonymous_license.signature)
                    for item in batch
                ],
                self.license_key,
            ),
            _check_own_signature,
        )
        self._mark_stage("redeem", "screen_license", stage_start, len(pending))

        # Stage 2: one revocation-list pass for the whole queue.
        stage_start = time.monotonic()
        revoked = self._revocations.revoked_subset(
            requests[index].anonymous_license.license_id for index in pending
        )
        if revoked:
            survivors = []
            for index in pending:
                if requests[index].anonymous_license.license_id in revoked:
                    results[index] = RevokedLicenseError(
                        "anonymous licence is revoked"
                    )
                else:
                    survivors.append(index)
            pending = survivors
        self._mark_stage("redeem", "revocation", stage_start, len(pending))

        # Stage 3: blind-signature screening + aggregated escrow
        # binding proofs for the pseudonym certificates.
        def _check_certificate(request: RedeemRequest) -> None:
            try:
                request.certificate.verify(self._issuer_key)
            except Exception as exc:
                raise AuthenticationError(
                    f"pseudonym certificate invalid: {exc}"
                ) from exc

        stage_start = time.monotonic()
        pending = _screen(
            pending,
            lambda batch: batch_verify_certificates(
                [item.certificate for item in batch], self._issuer_key, rng=self._rng
            ),
            _check_certificate,
        )
        self._mark_stage("redeem", "certificates", stage_start, len(pending))

        # One-shot request nonces, spent only now that the licence and
        # certificate have checked out — the single-item path orders it
        # the same way, so a request rejected for a provider-side
        # reason (stale issuer key, tampered licence) never burns its
        # nonce and can be resubmitted verbatim.
        stage_start = time.monotonic()
        survivors = []
        for index in pending:
            request = requests[index]
            try:
                self._check_nonce(request.certificate.fingerprint, request.nonce)
            except Exception as exc:
                results[index] = exc
            else:
                survivors.append(index)
        pending = survivors
        self._mark_stage("redeem", "nonces", stage_start, len(pending))

        # Stage 4: the Schnorr request envelopes, folded into one
        # random linear combination (legacy commitment-less signatures
        # fall back to scalar verification inside batch_verify).
        def _check_envelope(request: RedeemRequest) -> None:
            try:
                request.certificate.pseudonym.signing_key.verify(
                    request.signing_payload(), request.signature
                )
            except Exception as exc:
                raise AuthenticationError(
                    f"request signature invalid: {exc}"
                ) from exc

        stage_start = time.monotonic()
        pending = _screen(
            pending,
            lambda batch: batch_verify(
                [
                    (
                        item.certificate.pseudonym.signing_key,
                        item.signing_payload(),
                        item.signature,
                    )
                    for item in batch
                ],
                rng=self._rng,
            ),
            _check_envelope,
        )
        self._mark_stage("redeem", "schnorr", stage_start, len(pending))

        # Stage 5: spend each token and issue the personalized licences
        # (per-item: the spent store is the atomic exactly-once gate and
        # every licence wraps the key to a different pseudonym).
        stage_start = time.monotonic()
        for index in pending:
            try:
                results[index] = self._finalize_redemption(requests[index])
            except Exception as exc:
                results[index] = exc
        self._mark_stage("redeem", "finalize", stage_start, len(pending))
        return results

    def _preredeem_checks(
        self,
        request: RedeemRequest,
        *,
        check_license_signature: bool = True,
        check_certificate: bool = True,
        check_nonce: bool = True,
        check_signature: bool = True,
    ) -> None:
        """Everything `redeem` validates before any state changes.

        The ``check_*`` flags let :meth:`redeem_batch` skip the three
        signature families it verifies in aggregate, and defer the
        nonce spend until after those aggregates pass.
        """
        anonymous = request.anonymous_license
        if check_license_signature:
            try:
                anonymous.verify(self.license_key)
            except Exception as exc:
                raise AuthenticationError(f"anonymous licence invalid: {exc}") from exc
        record = self._licenses.get(anonymous.license_id)
        if record is None or record.kind != license_store.KIND_ANONYMOUS:
            raise ProtocolError("anonymous licence not on register")
        self._verify_request_envelope(
            certificate=request.certificate,
            signature=request.signature,
            payload=request.signing_payload(),
            nonce=request.nonce,
            at=request.at,
            check_certificate=check_certificate,
            check_nonce=check_nonce,
            check_signature=check_signature,
        )

    def _finalize_redemption(self, request: RedeemRequest) -> PersonalLicense:
        """Spend the token and issue the licence (after validation)."""
        anonymous = request.anonymous_license
        rng, now = self._request_entropy(request)
        transcript = redemption_transcript(
            request.certificate, request.signature, request.nonce, request.at
        )
        previous = self._spent_tokens.try_spend(
            anonymous.license_id, at=now, transcript=transcript
        )
        if previous is not None:
            evidence = MisuseEvidence(
                kind="double-redemption",
                token_id=anonymous.license_id,
                content_id=anonymous.content_id,
                first_transcript=previous.transcript,
                second_transcript=transcript,
            )
            self._audit.append(
                at=now,
                actor=self.name,
                event="double_redemption_detected",
                payload={"token": anonymous.license_id},
            )
            error = DoubleRedemptionError(anonymous.license_id)
            error.evidence = evidence
            raise error

        license_ = self._issue_personal(
            content_id=anonymous.content_id,
            rights=anonymous.rights,
            pseudonym=request.certificate.pseudonym,
            rng=rng,
            now=now,
        )
        self._licenses.set_status(anonymous.license_id, license_store.STATUS_REDEEMED)
        self._audit.append(
            at=now,
            actor=self.name,
            event="license_redeemed",
            payload={
                "token": anonymous.license_id,
                "license": license_.license_id,
                "content": anonymous.content_id,
                "pseudonym": request.certificate.fingerprint,
            },
        )
        return license_

    # -- revocation distribution ----------------------------------------------------

    def revocation_sync(
        self, cursor: int = 0
    ) -> tuple[list[RevocationEntry], SignedSnapshot, int]:
        """Delta entries, a signed snapshot and the advanced cursor.

        For the single-store LRL the cursor *is* the list version — an
        exact indexed watermark already — so the device hands back
        whatever it last received (``0`` = everything).  The sharded
        service surface returns a per-shard tuple in the same slot; the
        device treats the cursor as opaque either way.
        """
        entries = self._revocations.entries_since(int(cursor))
        snapshot = self._revocations.snapshot(self._license_key)
        return entries, snapshot, snapshot.version

    def prove_not_revoked(self, license_id: bytes):
        """Signed snapshot plus a Merkle non-inclusion proof.

        Lets a holder convince an *offline* third party (a second-hand
        buyer, an arbiter) that a licence was not revoked as of the
        snapshot — without that party trusting the provider's word or
        downloading the whole list.  Returns ``(snapshot, proof)``;
        verify with
        :func:`repro.storage.merkle.verify_non_inclusion` against the
        snapshot's signed root.  Raises
        :class:`~repro.errors.RevokedLicenseError` if the licence *is*
        on the list.
        """
        if self._revocations.is_revoked(license_id):
            raise RevokedLicenseError(
                f"licence {license_id.hex()[:16]} is revoked"
            )
        snapshot = self._revocations.snapshot(self._license_key)
        proof = self._revocations.merkle_tree().prove_non_inclusion(license_id)
        return snapshot, proof

    # -- internals ----------------------------------------------------------

    def _issue_personal(
        self,
        *,
        content_id: str,
        rights,
        pseudonym,
        rng: RandomSource | None = None,
        now: int | None = None,
    ) -> PersonalLicense:
        rng = rng if rng is not None else self._rng
        now = now if now is not None else self._clock.now()
        license_id = rng.random_bytes(LICENSE_ID_SIZE)
        content_key = self._contents.content_key(content_id)
        wrapped = pseudonym.kem_key.kem_wrap(
            content_key,
            context=kem_context(license_id, content_id),
            rng=rng,
        )
        license_ = sign_personal_license(
            self._license_key,
            license_id=license_id,
            content_id=content_id,
            rights=rights,
            pseudonym=pseudonym,
            wrapped_key=wrapped,
            issued_at=now,
        )
        self._licenses.insert(
            license_id,
            kind=license_store.KIND_PERSONAL,
            content_id=content_id,
            holder=pseudonym.fingerprint,
            rights_text=rights_to_text(rights),
            issued_at=now,
            blob=codec.encode(license_.as_dict()),
        )
        return license_

    def _verify_request_envelope(
        self,
        *,
        certificate,
        signature,
        payload: bytes,
        nonce: bytes,
        at: int,
        check_certificate: bool = True,
        check_nonce: bool = True,
        check_signature: bool = True,
    ) -> None:
        if check_certificate:
            # The batch path screens the whole queue's certificates in
            # one aggregated check instead.
            try:
                certificate.verify(self._issuer_key)
            except Exception as exc:
                raise AuthenticationError(
                    f"pseudonym certificate invalid: {exc}"
                ) from exc
        self._check_freshness(at)
        if check_nonce:
            # The batch path spends nonces after its aggregate licence
            # and certificate checks pass, matching this ordering.
            self._check_nonce(certificate.fingerprint, nonce)
        if not check_signature:
            # Caller verifies the Schnorr signature itself (the batch
            # path folds a whole queue into one aggregated check).
            return
        try:
            certificate.pseudonym.signing_key.verify(payload, signature)
        except Exception as exc:
            raise AuthenticationError(f"request signature invalid: {exc}") from exc

    def _check_freshness(self, at: int) -> None:
        if abs(at - self._clock.now()) > REQUEST_FRESHNESS_WINDOW:
            raise AuthenticationError("request timestamp outside freshness window")

    def _check_nonce(self, scope: bytes, nonce: bytes) -> None:
        """One-shot request nonces (replay filter), scoped per pseudonym."""
        previous = self._request_nonces.try_spend(
            scope + nonce, at=self._clock.now()
        )
        if previous is not None:
            raise AuthenticationError("request nonce replayed")
