"""The protocol parties.

- :class:`~repro.core.actors.bank.Bank` — blind-signature e-cash mint
  with double-spend detection;
- :class:`~repro.core.actors.issuer.SmartCardIssuer` — enrolment,
  blind pseudonym certification, escrow opening (the TTP);
- :class:`~repro.core.actors.provider.ContentProvider` — catalog,
  anonymous sales, licence exchange/redemption, revocation lists;
- :class:`~repro.core.actors.device.CompliantDevice` — verification
  and rights enforcement at render time;
- :class:`~repro.core.actors.user.UserAgent` — the user's software:
  card, wallet, licences.

Actors communicate by direct method calls carrying the message objects
from :mod:`repro.core.messages`; the protocol wrappers in
:mod:`repro.core.protocols` measure those messages as wire bytes.
"""

from .bank import Bank
from .issuer import SmartCardIssuer, RevocationResult
from .provider import ContentProvider
from .device import CompliantDevice
from .user import UserAgent

__all__ = [
    "Bank",
    "SmartCardIssuer",
    "RevocationResult",
    "ContentProvider",
    "CompliantDevice",
    "UserAgent",
]
