"""The bank: Chaum blind-signature e-cash.

The paper requires an anonymous payment channel ("e.g. prepaid cards");
blind e-cash is the canonical cryptographic instantiation.  The flow:

- **withdraw** — the user debits their (identified) account and gets a
  blind signature over a coin whose serial the bank never sees;
- **pay** — the user hands coins to the provider inside a purchase;
- **deposit** — the provider deposits the coins; the bank verifies its
  own signature and the spent store enforces one deposit per serial.

Unlinkability holds by construction: the bank knows *that* Alice
withdrew two coins and *that* the provider deposited serials X and Y,
but blinding makes the (withdrawal ↔ serial) map information-
theoretically hidden.  A double spend surfaces as
:class:`~repro.errors.DoubleSpendError` with the original deposit
transcript attached as evidence.

One RSA key pair **per denomination** — a blind signer cannot see what
it signs, so the key is the only thing scoping a coin's value.
"""

from __future__ import annotations

from ... import codec
from ...clock import Clock
from ...crypto.blind_rsa import (
    BlindSigner,
    batch_verify_blind_signatures,
    verify_blind_signature,
)
from ...crypto.rand import RandomSource
from ...crypto.rsa import RsaPublicKey, generate_rsa_key
from ...errors import DoubleSpendError, ParameterError, PaymentError
from ...storage.engine import Database
from ...storage.ledger import LedgerEntry, LedgerStore
from ...storage.spent_tokens import SpentTokenStore
from ..messages import Coin

DEFAULT_DENOMINATIONS = (1, 5, 20)


def decompose_amount(amount: int, denominations: tuple[int, ...]) -> list[int]:
    """Greedy denomination split of ``amount`` (raises if impossible).

    The ONE definition: the in-process bank, the service desks and the
    client-side surfaces (gateway / socket client) must split amounts
    identically, or a withdrawal planned against one surface would not
    be spendable through another.
    """
    if amount <= 0:
        raise PaymentError("amount must be positive")
    remaining = amount
    coins: list[int] = []
    for denomination in denominations:
        while remaining >= denomination:
            coins.append(denomination)
            remaining -= denomination
    if remaining:
        raise PaymentError(
            f"amount {amount} not representable in denominations"
            f" {denominations}"
        )
    return coins


class Bank:
    """Mint, account ledger and deposit desk."""

    def __init__(
        self,
        *,
        rng: RandomSource,
        clock: Clock,
        db: Database | None = None,
        denominations: tuple[int, ...] = DEFAULT_DENOMINATIONS,
        key_bits: int = 1024,
    ):
        if not denominations or any(d <= 0 for d in denominations):
            raise PaymentError("denominations must be positive")
        self._rng = rng
        self._clock = clock
        self._denominations = tuple(sorted(set(denominations), reverse=True))
        self._signers: dict[int, BlindSigner] = {}
        for denomination in self._denominations:
            key = generate_rsa_key(key_bits, rng=rng.fork(f"bank-denom-{denomination}"))
            self._signers[denomination] = BlindSigner(key)
        self._db = db or Database()
        # Balances moved out of a process dict into the durable ledger
        # store (same database as the spent-token gate), so an
        # in-process bank survives a restart over a file-backed
        # Database exactly like the sharded service ledger does.
        self._ledger = LedgerStore(self._db)
        self._spent = SpentTokenStore(self._db, "ecash")

    # -- public parameters ---------------------------------------------------

    @property
    def denominations(self) -> tuple[int, ...]:
        """Supported coin values, largest first."""
        return self._denominations

    def public_key(self, denomination: int) -> RsaPublicKey:
        """The verification key for one denomination."""
        signer = self._signers.get(denomination)
        if signer is None:
            raise PaymentError(f"unsupported denomination {denomination}")
        return signer.public_key

    def public_keys(self) -> dict[int, RsaPublicKey]:
        return {d: s.public_key for d, s in self._signers.items()}

    def signing_keys(self) -> dict:
        """Per-denomination private keys — what a service pool's
        withdrawal desks are provisioned with (the blind signer is
        stateless, so exporting the keys IS exporting the mint)."""
        return {d: s._private_key for d, s in self._signers.items()}

    # -- accounts ------------------------------------------------------------

    def open_account(self, account_id: str, *, initial_balance: int = 0) -> None:
        self._ledger.open_account(
            account_id, at=self._clock.now(), initial_balance=initial_balance
        )

    def balance(self, account_id: str) -> int:
        balance = self._ledger.balance(account_id)
        if balance is None:
            raise PaymentError(f"no account {account_id!r}")
        return balance

    def statement(self, account_id: str, *, limit: int | None = None) -> list[LedgerEntry]:
        """The account's journal (every credit and debit, with deposit
        transcripts) — the read half of the BankSurface API."""
        if not self._ledger.has_account(account_id):
            raise PaymentError(f"no account {account_id!r}")
        return self._ledger.statement(account_id, limit=limit)

    # -- withdrawal (blind) -----------------------------------------------------

    def withdraw_blind(self, account_id: str, denomination: int, blinded: int) -> int:
        """Debit the account and blind-sign one coin request.

        The bank sees the *account* but not the coin serial hidden in
        ``blinded`` — this is the unlinkability anchor for payments.
        """
        if not self._ledger.has_account(account_id):
            raise PaymentError(f"no account {account_id!r}")
        signer = self._signers.get(denomination)
        if signer is None:
            raise PaymentError(f"unsupported denomination {denomination}")
        # Validate the blind request BEFORE debiting: the ledger debit
        # is durable, so a range failure after it would burn the
        # customer's money for a request that produced no signature.
        if not 0 <= blinded < signer.public_key.n:
            raise ParameterError("blinded value out of range")
        self._ledger.debit(account_id, denomination, at=self._clock.now())
        return signer.sign_blinded(blinded)

    # -- deposit ----------------------------------------------------------------

    def verify_coin(self, coin: Coin) -> None:
        """Signature-only check (no spend state change)."""
        key = self.public_key(coin.value)
        verify_blind_signature(coin.payload(), coin.signature, key)

    def verify_coins(self, coins: list[Coin]) -> None:
        """Batch signature check (no spend state change).

        Coins are grouped per denomination key and screened with one
        RSA public operation per denomination instead of one per coin
        (see :func:`~repro.crypto.blind_rsa.batch_verify_blind_signatures`).
        """
        by_denomination: dict[int, list[Coin]] = {}
        for coin in coins:
            by_denomination.setdefault(coin.value, []).append(coin)
        for denomination, batch in by_denomination.items():
            key = self.public_key(denomination)
            batch_verify_blind_signatures(
                [(coin.payload(), coin.signature) for coin in batch], key
            )

    def deposit_batch(self, account_id: str, coins: list[Coin]) -> None:
        """Verify and credit a whole payment's coins; exactly once each.

        Same guarantees as per-coin :meth:`deposit`, amortized: every
        signature (batched per denomination) and the spent store are
        checked before any balance changes, so a rejected batch leaves
        no coin half-deposited.  Raises
        :class:`~repro.errors.DoubleSpendError` on a replayed serial —
        including a serial repeated within the batch itself.
        """
        coins = list(coins)
        if not self._ledger.has_account(account_id):
            raise PaymentError(f"no account {account_id!r}")
        self.verify_coins(coins)
        tokens = [coin.spent_token() for coin in coins]
        seen: set[bytes] = set()
        for coin, token in zip(coins, tokens):
            if token in seen or self._spent.is_spent(token):
                raise DoubleSpendError(coin.serial)
            seen.add(token)
        now = self._clock.now()
        # One transaction for the whole payment: spends and credit land
        # together or not at all, so a crash mid-batch cannot leave a
        # coin spent without its credit (single database — the sharded
        # service needs the intent protocol for the same guarantee).
        with self._db.transaction(immediate=True):
            for coin, token in zip(coins, tokens):
                transcript = codec.encode(
                    {"depositor": account_id, "at": now, "value": coin.value}
                )
                # The is_spent pre-screen above ran outside this
                # transaction: over a shared file-backed Database
                # another process can spend a coin in the gap, and
                # silently skipping the conflict here would credit an
                # already-spent coin.  The raise rolls the whole batch
                # back — same contract as the single-coin path.
                previous = self._spent.try_spend(
                    token, at=now, transcript=transcript
                )
                if previous is not None:
                    raise DoubleSpendError(coin.serial)
            self._ledger.credit(
                account_id,
                sum(coin.value for coin in coins),
                at=now,
                transcript=codec.encode(
                    {"depositor": account_id, "at": now, "coins": sorted(tokens)}
                ),
            )

    def deposit(self, account_id: str, coin: Coin) -> None:
        """Verify and credit; exactly once per serial.

        Raises :class:`~repro.errors.DoubleSpendError` on a replayed
        serial, carrying the coin id; the original transcript stays in
        the spent store as evidence.
        """
        if not self._ledger.has_account(account_id):
            raise PaymentError(f"no account {account_id!r}")
        self.verify_coin(coin)
        transcript = codec.encode(
            {"depositor": account_id, "at": self._clock.now(), "value": coin.value}
        )
        token = coin.spent_token()
        with self._db.transaction(immediate=True):
            previous = self._spent.try_spend(
                token, at=self._clock.now(), transcript=transcript
            )
            if previous is not None:
                raise DoubleSpendError(coin.serial)
            self._ledger.credit(
                account_id, coin.value, at=self._clock.now(), transcript=transcript
            )

    def is_spent(self, coin: Coin) -> bool:
        return self._spent.is_spent(coin.spent_token())

    def spent_count(self) -> int:
        return self._spent.count()

    # -- identified payment (the baseline's "credit card" path) -------------------

    def transfer(self, from_account: str, to_account: str, amount: int) -> None:
        """Account-to-account payment — fully identified on both ends.

        This is the payment channel the paper says conventional DRM
        will keep using ("vendors will learn how much someone pays");
        the baseline system pays with it, and the privacy experiments
        treat its ledger as attacker-visible.
        """
        if amount <= 0:
            raise PaymentError("amount must be positive")
        for account in (from_account, to_account):
            if not self._ledger.has_account(account):
                raise PaymentError(f"no account {account!r}")
        now = self._clock.now()
        transcript = codec.encode(
            {"from": from_account, "to": to_account, "at": now, "amount": amount}
        )
        with self._db.transaction(immediate=True):
            self._ledger.debit(
                from_account, amount, at=now,
                kind="transfer-out", transcript=transcript,
            )
            self._ledger.credit(
                to_account, amount, at=now,
                kind="transfer-in", transcript=transcript,
            )

    # -- helpers ------------------------------------------------------------------

    def decompose(self, amount: int) -> list[int]:
        """Greedy denomination split of ``amount`` (raises if impossible)."""
        return decompose_amount(amount, self._denominations)
