"""The small PKI: compliance authority, device and pseudonym certificates.

Three certificate shapes, each with one canonical signed payload:

- :class:`AuthorityCertificate` — the compliance authority (the root of
  trust everyone is personalized with) certifies long-lived actor keys:
  the provider's licence-signing key, the issuer's certificate key, the
  bank's coin keys.

- :class:`DeviceCertificate` — "this device is compliant": device id,
  capabilities, validity window, authority signature.  Smart cards
  check it before releasing content keys; providers may check it
  during direct-to-device flows.

- :class:`PseudonymCertificate` — the paper's anonymous credential:
  a pseudonym public key plus its identity escrow, **blind-signed** by
  the card issuer.  Verifying it proves "a real enrolled user, openable
  by the TTP on misuse" while identifying nobody — not even the issuer
  can link it to the enrolment that produced it.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import codec
from ..crypto.blind_rsa import verify_blind_signature
from ..crypto.rsa import RsaPrivateKey, RsaPublicKey
from ..errors import ComplianceError, InvalidSignature
from .escrow import IdentityEscrow
from .identity import Pseudonym


def _authority_payload(kind: str, body: dict) -> bytes:
    return codec.encode({"what": f"cert:{kind}", "body": body})


@dataclass(frozen=True)
class AuthorityCertificate:
    """Authority statement binding a role name to an RSA public key."""

    role: str            # e.g. "content-provider", "card-issuer", "bank"
    subject_name: str
    subject_key: RsaPublicKey
    not_before: int
    not_after: int
    signature: bytes

    def body(self) -> dict:
        return {
            "role": self.role,
            "name": self.subject_name,
            "n": self.subject_key.n,
            "e": self.subject_key.e,
            "nbf": self.not_before,
            "naf": self.not_after,
        }

    def verify(self, authority_key: RsaPublicKey, *, now: int | None = None) -> None:
        """Raises on bad signature or (when ``now`` given) expiry."""
        authority_key.verify_pkcs1(
            _authority_payload("role", self.body()), self.signature
        )
        if now is not None and not self.not_before <= now <= self.not_after:
            raise ComplianceError(
                f"certificate for {self.subject_name!r} outside validity window"
            )

    def as_dict(self) -> dict:
        return {"body": self.body(), "sig": self.signature}

    @classmethod
    def from_dict(cls, data: dict) -> "AuthorityCertificate":
        body = data["body"]
        return cls(
            role=body["role"],
            subject_name=body["name"],
            subject_key=RsaPublicKey(n=int(body["n"]), e=int(body["e"])),
            not_before=int(body["nbf"]),
            not_after=int(body["naf"]),
            signature=bytes(data["sig"]),
        )


@dataclass(frozen=True)
class DeviceCertificate:
    """Compliance statement for one rendering device."""

    device_id: str        # lowercase hex fingerprint, used by DeviceConstraint
    model: str
    capabilities: tuple[str, ...]   # actions the device is certified for
    not_before: int
    not_after: int
    signature: bytes

    def body(self) -> dict:
        return {
            "device": self.device_id,
            "model": self.model,
            "caps": list(self.capabilities),
            "nbf": self.not_before,
            "naf": self.not_after,
        }

    def verify(self, authority_key: RsaPublicKey, *, now: int | None = None) -> None:
        try:
            authority_key.verify_pkcs1(
                _authority_payload("device", self.body()), self.signature
            )
        except InvalidSignature as exc:
            raise ComplianceError(f"device certificate invalid: {exc}") from exc
        if now is not None and not self.not_before <= now <= self.not_after:
            raise ComplianceError(f"device {self.device_id} certificate expired")

    def as_dict(self) -> dict:
        return {"body": self.body(), "sig": self.signature}

    @classmethod
    def from_dict(cls, data: dict) -> "DeviceCertificate":
        body = data["body"]
        return cls(
            device_id=body["device"],
            model=body["model"],
            capabilities=tuple(body["caps"]),
            not_before=int(body["nbf"]),
            not_after=int(body["naf"]),
            signature=bytes(data["sig"]),
        )


class CertificateAuthority:
    """The compliance authority: issues role and device certificates."""

    def __init__(self, signing_key: RsaPrivateKey, name: str = "compliance-authority"):
        self._key = signing_key
        self.name = name

    @property
    def public_key(self) -> RsaPublicKey:
        return self._key.public_key

    def certify_role(
        self,
        role: str,
        subject_name: str,
        subject_key: RsaPublicKey,
        *,
        not_before: int,
        not_after: int,
    ) -> AuthorityCertificate:
        body = {
            "role": role,
            "name": subject_name,
            "n": subject_key.n,
            "e": subject_key.e,
            "nbf": not_before,
            "naf": not_after,
        }
        return AuthorityCertificate(
            role=role,
            subject_name=subject_name,
            subject_key=subject_key,
            not_before=not_before,
            not_after=not_after,
            signature=self._key.sign_pkcs1(_authority_payload("role", body)),
        )

    def certify_device(
        self,
        device_id: str,
        *,
        model: str,
        capabilities: tuple[str, ...],
        not_before: int,
        not_after: int,
    ) -> DeviceCertificate:
        body = {
            "device": device_id,
            "model": model,
            "caps": list(capabilities),
            "nbf": not_before,
            "naf": not_after,
        }
        return DeviceCertificate(
            device_id=device_id,
            model=model,
            capabilities=capabilities,
            not_before=not_before,
            not_after=not_after,
            signature=self._key.sign_pkcs1(_authority_payload("device", body)),
        )


# ---------------------------------------------------------------------------
# Pseudonym certificates (blind-issued)
# ---------------------------------------------------------------------------


def pseudonym_certificate_payload(pseudonym: Pseudonym, escrow: IdentityEscrow) -> bytes:
    """The exact bytes the issuer blind-signs — pseudonym plus escrow,
    so neither can be swapped after issuance."""
    return codec.encode(
        {
            "what": "pseudonym-cert",
            "pseudonym": pseudonym.as_dict(),
            "escrow": escrow.as_dict(),
        }
    )


@dataclass(frozen=True)
class PseudonymCertificate:
    """Blind-issued anonymous credential for one pseudonym."""

    pseudonym: Pseudonym
    escrow: IdentityEscrow
    signature: bytes     # issuer FDH blind signature over the payload

    def signed_payload(self) -> bytes:
        """The blind-signed bytes, memoized — every verifier (and every
        batch screening stage) needs them, and canonical encoding of a
        certificate-sized structure is not free."""
        from ..memo import cached_bytes

        return cached_bytes(
            self,
            "_signed_payload",
            lambda: pseudonym_certificate_payload(self.pseudonym, self.escrow),
        )

    def verify(self, issuer_key: RsaPublicKey) -> None:
        """Full check: issuer signature plus escrow binding.

        Raises :class:`~repro.errors.InvalidSignature` or
        :class:`~repro.errors.EscrowError`.
        """
        verify_blind_signature(self.signed_payload(), self.signature, issuer_key)
        self.escrow.verify_binding(self.pseudonym.fingerprint)

    @property
    def fingerprint(self) -> bytes:
        return self.pseudonym.fingerprint

    def as_dict(self) -> dict:
        return {
            "pseudonym": self.pseudonym.as_dict(),
            "escrow": self.escrow.as_dict(),
            "sig": self.signature,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PseudonymCertificate":
        return cls(
            pseudonym=Pseudonym.from_dict(data["pseudonym"]),
            escrow=IdentityEscrow.from_dict(data["escrow"]),
            signature=bytes(data["sig"]),
        )

    def wire_size(self) -> int:
        """Encoded size in bytes (experiment E6)."""
        return len(codec.encode(self.as_dict()))


def batch_verify_certificates(
    certificates: list[PseudonymCertificate],
    issuer_key: RsaPublicKey,
    *,
    rng=None,
) -> None:
    """Verify a queue of pseudonym certificates together.

    Accepts exactly the set that per-certificate
    :meth:`PseudonymCertificate.verify` accepts, but amortized two
    ways: the issuer blind signatures are screened with one RSA public
    operation (Bellare–Garay–Rabin, duplicates fall back individually)
    and the escrow binding proofs are folded into one small-exponent
    aggregated check
    (:func:`~repro.crypto.schnorr.batch_verify_knowledge`).  Raises on
    any invalid member; callers that need to *isolate* the offender
    re-verify individually on failure.
    """
    from ..crypto.blind_rsa import batch_verify_blind_signatures
    from ..crypto.schnorr import batch_verify_knowledge
    from ..errors import EscrowError

    certificates = list(certificates)
    if not certificates:
        return
    batch_verify_blind_signatures(
        [(cert.signed_payload(), cert.signature) for cert in certificates],
        issuer_key,
    )
    try:
        batch_verify_knowledge(
            [
                cert.escrow.binding_statement(cert.pseudonym.fingerprint)
                for cert in certificates
            ],
            rng=rng,
        )
    except Exception as exc:
        raise EscrowError(f"escrow binding proof invalid: {exc}") from exc
