"""Verifiable identity escrow — revocable anonymity.

Every certified pseudonym carries an ElGamal encryption of the card's
identity tag under the TTP's escrow key.  Honest users are never
opened; on cryptographic evidence of misuse (a double-redeemed
anonymous licence, a double-spent coin) the TTP decrypts and the
pseudonym's owner is identified.

Two proofs keep the parties honest:

- the **binding proof** (Schnorr PoK of the encryption randomness,
  with the pseudonym fingerprint in the Fiat–Shamir context) stops an
  escrow being lifted from one certificate and replayed in another;

- the **opening proof** (Chaum–Pedersen) shows the tag the TTP
  announces really is the decryption of the escrow in question, so a
  malicious TTP cannot frame an innocent user.  De-anonymization is
  *publicly auditable* — anyone holding the certificate can check it.

What the proofs deliberately do *not* show is that the encrypted tag
is the card's true tag; that rests on card compliance, exactly where
the paper rests it (see DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.elgamal import ElGamalCiphertext, ElGamalPrivateKey, ElGamalPublicKey
from ..crypto.groups import PrimeGroup, named_group
from ..crypto.hashes import int_to_bytes
from ..crypto.rand import RandomSource
from ..crypto.schnorr import (
    ChaumPedersenProof,
    DlogProof,
    prove_equality,
    prove_knowledge,
    verify_equality,
    verify_knowledge,
)
from ..crypto.numbers import modinv
from ..errors import EscrowError


@dataclass(frozen=True)
class IdentityEscrow:
    """An escrowed identity tag bound to one pseudonym certificate."""

    group: PrimeGroup
    ciphertext: ElGamalCiphertext
    binding_proof: DlogProof

    def as_dict(self) -> dict:
        return {
            "group": self.group.name,
            "ct": self.ciphertext.as_dict(),
            "proof": self.binding_proof.as_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "IdentityEscrow":
        return cls(
            group=named_group(data["group"]),
            ciphertext=ElGamalCiphertext.from_dict(data["ct"]),
            binding_proof=DlogProof.from_dict(data["proof"]),
        )

    def binding_statement(
        self, binding: bytes
    ) -> tuple[PrimeGroup, int, int, DlogProof, bytes]:
        """The ``(group, base, public, proof, context)`` tuple whose
        proof-of-knowledge check *is* the binding check — the shape
        :func:`~repro.crypto.schnorr.batch_verify_knowledge` folds a
        whole queue of into one aggregated equation."""
        return (
            self.group,
            self.group.g,
            self.ciphertext.c1,
            self.binding_proof,
            b"escrow-binding:" + binding,
        )

    def verify_binding(self, binding: bytes) -> None:
        """Check the escrow was created for context ``binding``.

        Raises :class:`~repro.errors.EscrowError` if the proof fails —
        e.g. the escrow was copied from another certificate.
        """
        group, base, public, proof, context = self.binding_statement(binding)
        try:
            verify_knowledge(group, base, public, proof, context=context)
        except Exception as exc:
            raise EscrowError(f"escrow binding proof invalid: {exc}") from exc


@dataclass(frozen=True)
class EscrowOpening:
    """The TTP's verifiable answer: the tag plus a decryption proof."""

    group: PrimeGroup
    tag_element: int
    proof: ChaumPedersenProof

    @property
    def tag_bytes(self) -> bytes:
        return int_to_bytes(self.tag_element, (self.group.p.bit_length() + 7) // 8)

    def as_dict(self) -> dict:
        return {
            "group": self.group.name,
            "tag": self.tag_element,
            "proof": self.proof.as_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EscrowOpening":
        return cls(
            group=named_group(data["group"]),
            tag_element=int(data["tag"]),
            proof=ChaumPedersenProof.from_dict(data["proof"]),
        )


def create_escrow(
    *,
    tag_element: int,
    ttp_key: ElGamalPublicKey,
    binding: bytes,
    rng: RandomSource,
) -> IdentityEscrow:
    """Encrypt ``tag_element`` under ``ttp_key`` bound to ``binding``."""
    group = ttp_key.group
    group.require_member(tag_element, "identity tag")
    k = group.random_exponent(rng)
    ciphertext = ttp_key.encrypt_element_with_randomness(tag_element, k)
    proof = prove_knowledge(
        group,
        group.g,
        ciphertext.c1,
        k,
        context=b"escrow-binding:" + binding,
        rng=rng,
    )
    return IdentityEscrow(group=group, ciphertext=ciphertext, binding_proof=proof)


def open_escrow(
    escrow: IdentityEscrow,
    ttp_private: ElGamalPrivateKey,
    *,
    rng: RandomSource,
) -> EscrowOpening:
    """Decrypt an escrow and prove the decryption correct.

    The Chaum–Pedersen statement: the TTP key ``y = g^x`` and the
    quotient ``c2/tag = c1^x`` share the exponent ``x`` — i.e. ``tag``
    is the honest decryption.
    """
    group = escrow.group
    if group.name != ttp_private.group.name:
        raise EscrowError("escrow group does not match TTP key")
    tag = ttp_private.decrypt_element(escrow.ciphertext)
    quotient = (escrow.ciphertext.c2 * modinv(tag, group.p)) % group.p
    proof = prove_equality(
        group,
        group.g,
        ttp_private.public_key.y,
        escrow.ciphertext.c1,
        quotient,
        ttp_private.x,
        context=b"escrow-opening",
        rng=rng,
    )
    return EscrowOpening(group=group, tag_element=tag, proof=proof)


def verify_opening(
    escrow: IdentityEscrow,
    opening: EscrowOpening,
    ttp_key: ElGamalPublicKey,
) -> None:
    """Audit a claimed opening against the escrow and the TTP key.

    Raises :class:`~repro.errors.EscrowError` when the claimed tag is
    not the true decryption — the "no framing" check.
    """
    group = escrow.group
    if opening.group.name != group.name or ttp_key.group.name != group.name:
        raise EscrowError("opening/escrow/key group mismatch")
    if not group.contains(opening.tag_element):
        raise EscrowError("claimed tag is not a group element")
    quotient = (escrow.ciphertext.c2 * modinv(opening.tag_element, group.p)) % group.p
    try:
        verify_equality(
            group,
            group.g,
            ttp_key.y,
            escrow.ciphertext.c1,
            quotient,
            opening.proof,
            context=b"escrow-opening",
        )
    except Exception as exc:
        raise EscrowError(f"escrow opening proof invalid: {exc}") from exc
