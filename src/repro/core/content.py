"""Content packaging: encrypt once, distribute identically to everyone.

A content item is encrypted under a fresh random content key ``K_C``
with authenticated encryption (AES-CTR + HMAC, see
:mod:`repro.crypto.modes`).  The resulting :class:`ContentPackage` is
public — the same bytes for every buyer, downloadable without
authentication, freely super-distributable.  All access control lives
in the licence layer: only a licence's wrapped key, unwrapped by a
smart card for a compliant device, turns the package back into media.

The package header (content id, title, codec tag) is bound as
associated data, so repackaging someone's payload under another id is
caught at decryption.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import codec
from ..crypto.modes import EtmCipher
from ..crypto.rand import RandomSource
from ..errors import DecryptionError

CONTENT_KEY_SIZE = 16


@dataclass(frozen=True)
class ContentPackage:
    """Encrypted content container (safe to hand to anyone)."""

    content_id: str
    title: str
    media_type: str
    ciphertext: bytes          # EtmCipher blob: nonce || ct || tag

    def header(self) -> dict:
        return {
            "content": self.content_id,
            "title": self.title,
            "media": self.media_type,
        }

    def header_bytes(self) -> bytes:
        return codec.encode({"what": "content-package", **self.header()})

    def to_bytes(self) -> bytes:
        return codec.encode({**self.header(), "ct": self.ciphertext})

    @classmethod
    def from_bytes(cls, data: bytes) -> "ContentPackage":
        decoded = codec.decode(data)
        return cls(
            content_id=decoded["content"],
            title=decoded["title"],
            media_type=decoded["media"],
            ciphertext=bytes(decoded["ct"]),
        )

    @property
    def size(self) -> int:
        return len(self.ciphertext)


def pack_content(
    content_id: str,
    payload: bytes,
    *,
    title: str = "",
    media_type: str = "application/octet-stream",
    rng: RandomSource,
) -> tuple[ContentPackage, bytes]:
    """Encrypt ``payload``; returns the package and the clear ``K_C``.

    The caller (the provider's publishing pipeline) stores ``K_C`` in
    the key table; the package goes in the public catalog.
    """
    content_key = rng.random_bytes(CONTENT_KEY_SIZE)
    package = ContentPackage(
        content_id=content_id,
        title=title,
        media_type=media_type,
        ciphertext=b"",
    )
    cipher = EtmCipher(content_key)
    ciphertext = cipher.encrypt(payload, aad=package.header_bytes(), rng=rng)
    return (
        ContentPackage(
            content_id=content_id,
            title=title,
            media_type=media_type,
            ciphertext=ciphertext,
        ),
        content_key,
    )


def unpack_content(package: ContentPackage, content_key: bytes) -> bytes:
    """Decrypt a package with ``K_C``.

    Raises :class:`~repro.errors.DecryptionError` on a wrong key or a
    tampered package/header.
    """
    if len(content_key) != CONTENT_KEY_SIZE:
        raise DecryptionError("content key has wrong size")
    cipher = EtmCipher(content_key)
    return cipher.decrypt(package.ciphertext, aad=package.header_bytes())
