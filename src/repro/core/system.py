"""One-call construction of a complete P2DRM deployment.

Examples, tests, benchmarks and the marketplace simulator all need the
same cast: a compliance authority, a card issuer (TTP), a bank, a
content provider, some devices and some users — wired to one clock and
one seeded random source.  :func:`build_deployment` builds exactly
that, deterministically for a given seed.

Key sizes default to small-but-real values so a full deployment
constructs in well under a second; the key-size sweep experiment (E2)
passes production sizes explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..clock import SimClock
from ..crypto.groups import PrimeGroup, named_group
from ..crypto.rand import DeterministicRandomSource, RandomSource
from ..crypto.rsa import generate_rsa_key
from ..storage.engine import Database
from .actors.bank import Bank
from .actors.device import CompliantDevice
from .actors.issuer import SmartCardIssuer
from .actors.provider import ContentProvider
from .actors.user import UserAgent
from .certificates import CertificateAuthority
from .protocols.registration import enrol_user

#: Validity horizon for certificates minted by :func:`build_deployment`.
_CERT_LIFETIME = 10 * 365 * 24 * 3600


@dataclass
class Deployment:
    """A fully wired system instance."""

    clock: SimClock
    rng: RandomSource
    group: PrimeGroup
    authority: CertificateAuthority
    issuer: SmartCardIssuer
    bank: Bank
    provider: ContentProvider
    devices: list[CompliantDevice] = field(default_factory=list)
    users: dict[str, UserAgent] = field(default_factory=dict)

    # -- convenience wiring -------------------------------------------------

    def add_user(
        self,
        user_id: str,
        *,
        balance: int = 100,
        fresh_pseudonym_per_transaction: bool = True,
    ) -> UserAgent:
        """Create, enrol and fund a user."""
        if user_id in self.users:
            raise ValueError(f"user {user_id!r} already exists")
        user = UserAgent(
            user_id,
            rng=self.rng.fork(f"user-{user_id}"),
            clock=self.clock,
            fresh_pseudonym_per_transaction=fresh_pseudonym_per_transaction,
        )
        enrol_user(user, self.issuer)
        self.bank.open_account(user.bank_account, initial_balance=balance)
        self.users[user_id] = user
        return user

    def add_device(
        self, *, model: str = "player", region: str = "eu", db: Database | None = None
    ) -> CompliantDevice:
        """Mint a certified device synced to the current LRL."""
        device_id = self.rng.random_bytes(8).hex()
        now = self.clock.now()
        certificate = self.authority.certify_device(
            device_id,
            model=model,
            capabilities=("play", "display", "print"),
            not_before=now,
            not_after=now + _CERT_LIFETIME,
        )
        device = CompliantDevice(
            certificate,
            clock=self.clock,
            provider_license_key=self.provider.license_key,
            region=region,
            db=db,
        )
        device.sync_revocations(self.provider)
        self.devices.append(device)
        return device

    # -- shorthands used by examples and benches -----------------------------

    def buy(self, user_id: str, content_id: str):
        return self.users[user_id].buy(
            content_id, provider=self.provider, issuer=self.issuer, bank=self.bank
        )

    def transfer(self, sender_id: str, receiver_id: str, license_id: bytes):
        from .protocols.transfer import transfer_license

        return transfer_license(
            self.users[sender_id],
            self.users[receiver_id],
            self.provider,
            self.issuer,
            license_id,
        )


def build_deployment(
    *,
    seed: bytes | str | int = b"p2drm",
    group_name: str = "test-512",
    rsa_bits: int = 1024,
    denominations: tuple[int, ...] = (1, 5, 20),
    start_time: int = 1_086_300_000,
    db_path: str = ":memory:",
) -> Deployment:
    """Construct a deterministic deployment.

    One sqlite database path serves all actors (separate tables); pass
    a file path for durability, default is in-memory.
    """
    rng = DeterministicRandomSource(seed) if not isinstance(seed, RandomSource) else seed
    clock = SimClock(start_time)
    group = named_group(group_name)
    # Warm the generator's fixed-base table before any actor starts
    # exponentiating (the issuer additionally registers its escrow key).
    group.precompute_generator()

    def actor_db(actor: str) -> Database:
        # Each actor keeps its own database: shared tables would merge
        # the issuer's and provider's audit logs, which are *supposed*
        # to be separate views of the world (the collusion experiments
        # join them explicitly).
        if db_path == ":memory:":
            return Database()
        return Database(f"{db_path}.{actor}")

    authority = CertificateAuthority(
        generate_rsa_key(rsa_bits, rng=rng.fork("authority-key"))
    )
    issuer = SmartCardIssuer(
        group,
        rng=rng.fork("issuer"),
        clock=clock,
        db=actor_db("issuer"),
        cert_key_bits=rsa_bits,
        authority_key=authority.public_key,
    )
    bank = Bank(
        rng=rng.fork("bank"),
        clock=clock,
        db=actor_db("bank"),
        denominations=denominations,
        key_bits=rsa_bits,
    )
    provider = ContentProvider(
        rng=rng.fork("provider"),
        clock=clock,
        issuer_certificate_key=issuer.certificate_key,
        bank=bank,
        db=actor_db("provider"),
        license_key_bits=rsa_bits,
    )
    return Deployment(
        clock=clock,
        rng=rng,
        group=group,
        authority=authority,
        issuer=issuer,
        bank=bank,
        provider=provider,
    )
