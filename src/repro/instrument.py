"""Operation counting for the cost experiments.

Experiment E1 reproduces the paper's cost argument — *which party pays
how many public-key operations in each protocol* — so the crypto layer
reports its expensive operations here.  Counting is off unless a
:func:`measure` scope is active, and the hot-path cost when off is one
``if`` on a module global.

Usage::

    with measure() as ops:
        run_purchase(...)
    print(ops.counts)   # {"rsa.private_op": 1, "modexp": 6, ...}

Scopes nest; every active scope sees every tick.  Counters are plain
dicts — this is a single-threaded research harness, not telemetry.

Counter taxonomy for the fast-exponentiation kernel
(:mod:`repro.crypto.fastexp`): ``modexp`` counts *chains* — one
square-and-multiply-equivalent pass, whether it served a single
exponentiation or a whole simultaneous product.  Sub-counters break a
chain's provenance down:

- ``modexp.fixed_base`` — served from a precomputed fixed-base table;
- ``modexp.cold``       — plain ``pow`` with no table;
- ``modexp.multi``      — one shared Shamir chain covering a product
  of powers (however many pairs it folded);
- ``schnorr.batch_verify`` / ``rsa.batch_verify`` — one aggregated
  batch check, with ``.signatures`` recording the batch size.

So ``counts["modexp"]`` is the number of full-length exponentiation
passes actually executed — the quantity the batching work drives down.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

_ACTIVE: list["OpCounter"] = []


@dataclass
class OpCounter:
    """Accumulated operation counts for one measurement scope."""

    counts: dict[str, int] = field(default_factory=dict)

    def add(self, name: str, amount: int = 1) -> None:
        self.counts[name] = self.counts.get(name, 0) + amount

    def get(self, name: str, default: int = 0) -> int:
        """The count for one exact counter name."""
        return self.counts.get(name, default)

    def total(self, prefix: str = "") -> int:
        """Sum of all counters whose name starts with ``prefix``."""
        return sum(v for k, v in self.counts.items() if k.startswith(prefix))

    def as_dict(self) -> dict[str, int]:
        return dict(sorted(self.counts.items()))


def tick(name: str, amount: int = 1) -> None:
    """Record ``amount`` occurrences of operation ``name`` (no-op when
    no scope is active)."""
    if _ACTIVE:
        for counter in _ACTIVE:
            counter.add(name, amount)


@contextmanager
def measure() -> Iterator[OpCounter]:
    """Activate a counting scope and yield its counter."""
    counter = OpCounter()
    _ACTIVE.append(counter)
    try:
        yield counter
    finally:
        _ACTIVE.remove(counter)
