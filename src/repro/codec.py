"""Canonical deterministic binary encoding for signable structures.

Every structure that is ever signed, hashed, or stored by the P2DRM
system — licences, certificates, coins, protocol messages, revocation
snapshots — is first reduced to a Python value built from ``None``,
``bool``, ``int``, ``bytes``, ``str``, ``list`` and ``dict`` (with
``str`` keys), then encoded by :func:`encode`.  The encoding is
*canonical*: a given value has exactly one byte representation and the
decoder rejects any non-canonical input.  This removes a whole class of
signature-malleability problems (two encodings of the same licence with
the same signature) without pulling in an ASN.1 stack.

Wire format (tag byte, then payload)::

    0x00  None
    0x01  True
    0x02  False
    0x03  int     sign byte (0 non-negative / 1 negative), varint length,
                  big-endian magnitude with no leading zero byte
    0x04  bytes   varint length, raw bytes
    0x05  str     varint length, UTF-8 bytes
    0x06  list    varint count, encoded items
    0x07  dict    varint count, (encoded key, encoded value) pairs with
                  keys strictly increasing in UTF-8 byte order

Varints are unsigned LEB128 with minimal length (no redundant
continuation groups).
"""

from __future__ import annotations

from typing import Any, Iterator

from .errors import CodecError, NonCanonicalEncoding

TAG_NONE = 0x00
TAG_TRUE = 0x01
TAG_FALSE = 0x02
TAG_INT = 0x03
TAG_BYTES = 0x04
TAG_STR = 0x05
TAG_LIST = 0x06
TAG_DICT = 0x07

_MAX_DEPTH = 64


def _encode_varint(value: int) -> bytes:
    if value < 0:
        raise CodecError("varint must be non-negative")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def _encode_into(value: Any, out: bytearray, depth: int) -> None:
    if depth > _MAX_DEPTH:
        raise CodecError("structure too deeply nested")
    if value is None:
        out.append(TAG_NONE)
    elif value is True:
        out.append(TAG_TRUE)
    elif value is False:
        out.append(TAG_FALSE)
    elif isinstance(value, int):
        out.append(TAG_INT)
        magnitude = abs(value)
        raw = magnitude.to_bytes((magnitude.bit_length() + 7) // 8, "big")
        out.append(1 if value < 0 else 0)
        out += _encode_varint(len(raw))
        out += raw
    elif isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        out.append(TAG_BYTES)
        out += _encode_varint(len(raw))
        out += raw
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(TAG_STR)
        out += _encode_varint(len(raw))
        out += raw
    elif isinstance(value, (list, tuple)):
        out.append(TAG_LIST)
        out += _encode_varint(len(value))
        for item in value:
            _encode_into(item, out, depth + 1)
    elif isinstance(value, dict):
        keys = list(value.keys())
        for key in keys:
            if not isinstance(key, str):
                raise CodecError(f"dict keys must be str, got {type(key).__name__}")
        encoded_keys = sorted(key.encode("utf-8") for key in keys)
        if len(set(encoded_keys)) != len(encoded_keys):
            raise CodecError("duplicate dict keys after UTF-8 encoding")
        out.append(TAG_DICT)
        out += _encode_varint(len(value))
        for raw_key in encoded_keys:
            key = raw_key.decode("utf-8")
            out.append(TAG_STR)
            out += _encode_varint(len(raw_key))
            out += raw_key
            _encode_into(value[key], out, depth + 1)
    else:
        raise CodecError(f"cannot encode value of type {type(value).__name__}")


def encode(value: Any) -> bytes:
    """Encode ``value`` to its unique canonical byte string.

    Raises :class:`~repro.errors.CodecError` for unsupported types,
    non-string dict keys, or excessive nesting.
    """
    out = bytearray()
    _encode_into(value, out, 0)
    return bytes(out)


class _Reader:
    """Cursor over an input buffer with canonicality checks."""

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    def remaining(self) -> int:
        return len(self._data) - self._pos

    def read_byte(self) -> int:
        if self._pos >= len(self._data):
            raise CodecError("truncated input")
        byte = self._data[self._pos]
        self._pos += 1
        return byte

    def read_bytes(self, count: int) -> bytes:
        if self.remaining() < count:
            raise CodecError("truncated input")
        chunk = self._data[self._pos : self._pos + count]
        self._pos += count
        return chunk

    def read_varint(self) -> int:
        result = 0
        shift = 0
        while True:
            byte = self.read_byte()
            if shift and byte == 0:
                # A zero continuation group means the previous byte's
                # continuation bit was redundant — non-minimal length.
                raise NonCanonicalEncoding("non-minimal varint")
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7
            if shift > 63:
                raise CodecError("varint too large")


def _decode_from(reader: _Reader, depth: int) -> Any:
    if depth > _MAX_DEPTH:
        raise CodecError("structure too deeply nested")
    tag = reader.read_byte()
    if tag == TAG_NONE:
        return None
    if tag == TAG_TRUE:
        return True
    if tag == TAG_FALSE:
        return False
    if tag == TAG_INT:
        sign = reader.read_byte()
        if sign not in (0, 1):
            raise CodecError("invalid int sign byte")
        length = reader.read_varint()
        raw = reader.read_bytes(length)
        if raw[:1] == b"\x00":
            raise NonCanonicalEncoding("int magnitude has leading zero")
        magnitude = int.from_bytes(raw, "big")
        if sign == 1 and magnitude == 0:
            raise NonCanonicalEncoding("negative zero")
        return -magnitude if sign else magnitude
    if tag == TAG_BYTES:
        length = reader.read_varint()
        return reader.read_bytes(length)
    if tag == TAG_STR:
        length = reader.read_varint()
        raw = reader.read_bytes(length)
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CodecError("invalid UTF-8 in string") from exc
    if tag == TAG_LIST:
        count = reader.read_varint()
        return [_decode_from(reader, depth + 1) for _ in range(count)]
    if tag == TAG_DICT:
        count = reader.read_varint()
        result: dict[str, Any] = {}
        previous_key: bytes | None = None
        for _ in range(count):
            key_tag = reader.read_byte()
            if key_tag != TAG_STR:
                raise CodecError("dict key must be a string")
            key_length = reader.read_varint()
            raw_key = reader.read_bytes(key_length)
            if previous_key is not None and raw_key <= previous_key:
                raise NonCanonicalEncoding("dict keys not strictly sorted")
            previous_key = raw_key
            try:
                key = raw_key.decode("utf-8")
            except UnicodeDecodeError as exc:
                raise CodecError("invalid UTF-8 in dict key") from exc
            result[key] = _decode_from(reader, depth + 1)
        return result
    raise CodecError(f"unknown tag 0x{tag:02x}")


def decode(data: bytes) -> Any:
    """Decode a canonical byte string produced by :func:`encode`.

    Rejects trailing bytes and every non-canonical variant, so
    ``encode(decode(data)) == data`` holds for every accepted input.
    """
    reader = _Reader(bytes(data))
    value = _decode_from(reader, 0)
    if reader.remaining():
        raise CodecError(f"{reader.remaining()} trailing bytes after value")
    return value


def iter_decode(data: bytes) -> Iterator[Any]:
    """Decode a concatenation of canonical values (a framed stream)."""
    reader = _Reader(bytes(data))
    while reader.remaining():
        yield _decode_from(reader, 0)
