"""P2DRM — Privacy-Preserving Digital Rights Management.

Reproduction of Conrado, Petković & Jonker, *Privacy-Preserving
Digital Rights Management* (SDM workshop at VLDB 2004, LNCS 3178).

Quick tour::

    from repro.core import build_deployment

    d = build_deployment(seed="demo")
    d.provider.publish("track-1", b"...media...", title="Track", price=3)
    alice = d.add_user("alice", balance=20)
    licence = alice.buy("track-1", provider=d.provider,
                        issuer=d.issuer, bank=d.bank)
    device = d.add_device()
    media = alice.play("track-1", device, provider=d.provider)

Package map (see DESIGN.md for the full inventory):

- :mod:`repro.codec` — canonical binary encoding for signed structures;
- :mod:`repro.clock` — injectable time;
- :mod:`repro.instrument` — operation counting for the cost experiments;
- :mod:`repro.crypto` — the from-scratch cryptographic substrate;
- :mod:`repro.rel` — the rights expression language;
- :mod:`repro.storage` — sqlite-backed stores, revocation lists,
  Merkle trees, Bloom filters, audit logs;
- :mod:`repro.core` — the paper's system (actors + protocols);
- :mod:`repro.baseline` — identity-based DRM for comparison;
- :mod:`repro.analysis` — privacy measurement and attackers;
- :mod:`repro.sim` — the marketplace workload simulator.
"""

from . import codec, errors
from .clock import Clock, SimClock, SystemClock

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "codec",
    "errors",
    "Clock",
    "SimClock",
    "SystemClock",
]
