"""Identity-based DRM — the system the paper improves upon.

Differences from the P2DRM provider, each one a privacy leak the
experiments quantify:

- **accounts, not pseudonyms**: every licence's holder column is the
  user id itself; one long-term key per user (no blinding, no escrow —
  there is no anonymity to revoke);
- **identified payment**: a ledger transfer ("credit card"), so the
  operator's records link user → content → price → time directly;
- **identified transfer**: user A asks the provider to re-register a
  licence to user B — the A→B edge lands in the audit log in clear.

Enforcement strength is *identical* to P2DRM (same licences, devices,
revocation lists); only the identity handling differs.  That is the
paper's whole point: privacy is not traded against control.
"""

from __future__ import annotations

from .. import codec
from ..clock import Clock
from ..crypto.rand import RandomSource
from ..crypto.rsa import RsaPublicKey
from ..crypto.schnorr import SchnorrSignature
from ..errors import (
    AuthenticationError,
    ProtocolError,
    RevokedLicenseError,
)
from ..rel.parser import parse_rights
from ..rel.serializer import rights_to_text
from ..storage import licenses as license_store
from ..core.actors.provider import ContentProvider
from ..core.identity import Pseudonym, SmartCard
from ..core.licenses import (
    LICENSE_ID_SIZE,
    PersonalLicense,
    kem_context,
    sign_personal_license,
)


class BaselineUser:
    """A user of the identity-based system: one account, one key."""

    def __init__(self, user_id: str, card: SmartCard):
        self.user_id = user_id
        self.card = card
        # One long-term identity key for everything.
        self.identity_pseudonym = card.new_pseudonym()
        self.licenses: dict[bytes, PersonalLicense] = {}
        self.bank_account = f"user-{user_id}"

    def add_license(self, license_: PersonalLicense) -> None:
        self.licenses[license_.license_id] = license_

    def license_for_content(self, content_id: str) -> PersonalLicense:
        for license_ in self.licenses.values():
            if license_.content_id == content_id:
                return license_
        raise ProtocolError(
            f"user {self.user_id!r} holds no licence for {content_id!r}"
        )

    def sign(self, message: bytes) -> SchnorrSignature:
        return self.card.sign(self.identity_pseudonym, message)


def _baseline_request_payload(
    kind: str, user_id: str, body: dict, at: int
) -> bytes:
    return codec.encode(
        {"what": f"baseline-{kind}", "user": user_id, "at": at, **body}
    )


class BaselineProvider(ContentProvider):
    """Identity-bound DRM on the P2DRM substrates.

    Inherits catalog, stores, licence signing and revocation machinery;
    replaces the anonymous handlers with identified ones.  The
    inherited anonymous endpoints are disabled — a baseline deployment
    has no pseudonym certificates to verify.
    """

    def __init__(
        self,
        *,
        rng: RandomSource,
        clock: Clock,
        bank,
        db=None,
        license_key_bits: int = 1024,
        name: str = "baseline-provider",
    ):
        # No issuer key: the baseline trusts account registration.
        super().__init__(
            rng=rng,
            clock=clock,
            issuer_certificate_key=RsaPublicKey(n=3 * 5, e=3),  # sentinel, unused
            bank=bank,
            db=db,
            license_key_bits=license_key_bits,
            name=name,
        )
        self._known_keys: dict[str, Pseudonym] = {}

    # -- account registration ------------------------------------------------

    def register_user(self, user: BaselineUser) -> None:
        """Record the user's long-term verification key."""
        if user.user_id in self._known_keys:
            raise ProtocolError(f"user {user.user_id!r} already registered")
        self._known_keys[user.user_id] = user.identity_pseudonym

    def _require_key(self, user_id: str) -> Pseudonym:
        pseudonym = self._known_keys.get(user_id)
        if pseudonym is None:
            raise AuthenticationError(f"unknown user {user_id!r}")
        return pseudonym

    # -- identified purchase ----------------------------------------------------

    def sell_identified(
        self, user: BaselineUser, content_id: str, signature: SchnorrSignature, at: int
    ) -> PersonalLicense:
        """Sell to a named account, paid by ledger transfer."""
        pseudonym = self._require_key(user.user_id)
        payload = _baseline_request_payload(
            "purchase", user.user_id, {"content": content_id}, at
        )
        try:
            pseudonym.signing_key.verify(payload, signature)
        except Exception as exc:
            raise AuthenticationError(f"purchase signature invalid: {exc}") from exc
        price = self._contents.price(content_id)
        self._bank.transfer(user.bank_account, self._bank_account, price)
        license_ = self._issue_identified(
            content_id=content_id, pseudonym=pseudonym, holder=user.user_id.encode()
        )
        self._audit.append(
            at=self._clock.now(),
            actor=self.name,
            event="license_issued",
            payload={
                "license": license_.license_id,
                "content": content_id,
                # The leak, in one line: the audit trail names the user.
                "user": user.user_id,
                "price": price,
            },
        )
        return license_

    # -- identified transfer -------------------------------------------------------

    def transfer_identified(
        self,
        sender: BaselineUser,
        receiver: BaselineUser,
        license_id: bytes,
        signature: SchnorrSignature,
        at: int,
    ) -> PersonalLicense:
        """Re-register a licence from one named account to another."""
        sender_key = self._require_key(sender.user_id)
        receiver_key = self._require_key(receiver.user_id)
        record = self._licenses.get(license_id)
        if record is None:
            raise ProtocolError("unknown licence")
        if record.status != license_store.STATUS_ACTIVE:
            raise RevokedLicenseError(f"licence is {record.status}")
        if record.holder != sender.user_id.encode():
            raise AuthenticationError("licence is not held by the sender")
        old_license = PersonalLicense.from_dict(codec.decode(record.blob))
        if not old_license.rights.transferable:
            raise ProtocolError("licence rights do not include transfer")
        payload = _baseline_request_payload(
            "transfer",
            sender.user_id,
            {"license": license_id, "to": receiver.user_id},
            at,
        )
        try:
            sender_key.signing_key.verify(payload, signature)
        except Exception as exc:
            raise AuthenticationError(f"transfer signature invalid: {exc}") from exc

        now = self._clock.now()
        self._revocations.revoke(license_id, at=now, reason="transferred")
        self._licenses.set_status(license_id, license_store.STATUS_EXCHANGED)
        new_license = self._issue_identified(
            content_id=old_license.content_id,
            pseudonym=receiver_key,
            holder=receiver.user_id.encode(),
            rights=old_license.rights,
        )
        self._audit.append(
            at=now,
            actor=self.name,
            event="license_transferred",
            payload={
                "old_license": license_id,
                "new_license": new_license.license_id,
                # Both endpoints of the social edge, in clear.
                "from": sender.user_id,
                "to": receiver.user_id,
                "content": old_license.content_id,
            },
        )
        return new_license

    # -- internals -----------------------------------------------------------------

    def _issue_identified(
        self, *, content_id: str, pseudonym: Pseudonym, holder: bytes, rights=None
    ) -> PersonalLicense:
        now = self._clock.now()
        if rights is None:
            rights = parse_rights("play; display; transfer[count<=1]")
        license_id = self._rng.random_bytes(LICENSE_ID_SIZE)
        content_key = self._contents.content_key(content_id)
        wrapped = pseudonym.kem_key.kem_wrap(
            content_key,
            context=kem_context(license_id, content_id),
            rng=self._rng,
        )
        license_ = sign_personal_license(
            self._license_key,
            license_id=license_id,
            content_id=content_id,
            rights=rights,
            pseudonym=pseudonym,
            wrapped_key=wrapped,
            issued_at=now,
        )
        self._licenses.insert(
            license_id,
            kind=license_store.KIND_IDENTITY,
            content_id=content_id,
            holder=holder,
            rights_text=rights_to_text(rights),
            issued_at=now,
            blob=codec.encode(license_.as_dict()),
        )
        return license_

    # -- anonymous endpoints are not part of the baseline ------------------------

    def sell(self, request):  # pragma: no cover - guard
        raise ProtocolError("baseline provider has no anonymous sell endpoint")

    def exchange(self, request):  # pragma: no cover - guard
        raise ProtocolError("baseline provider has no exchange endpoint")

    def redeem(self, request):  # pragma: no cover - guard
        raise ProtocolError("baseline provider has no redeem endpoint")


def baseline_purchase(
    user: BaselineUser, provider: BaselineProvider, content_id: str, *, clock: Clock
) -> PersonalLicense:
    """Client-side purchase flow for the baseline system."""
    at = clock.now()
    payload = _baseline_request_payload(
        "purchase", user.user_id, {"content": content_id}, at
    )
    license_ = provider.sell_identified(user, content_id, user.sign(payload), at)
    license_.verify(provider.license_key)
    user.add_license(license_)
    return license_


def baseline_transfer(
    sender: BaselineUser,
    receiver: BaselineUser,
    provider: BaselineProvider,
    license_id: bytes,
    *,
    clock: Clock,
) -> PersonalLicense:
    """Client-side transfer flow for the baseline system."""
    at = clock.now()
    payload = _baseline_request_payload(
        "transfer",
        sender.user_id,
        {"license": license_id, "to": receiver.user_id},
        at,
    )
    new_license = provider.transfer_identified(
        sender, receiver, license_id, sender.sign(payload), at
    )
    new_license.verify(provider.license_key)
    sender.licenses.pop(license_id, None)
    receiver.add_license(new_license)
    return new_license
