"""The comparison baseline: identity-based DRM.

The 2004 paper positions its system against the identity-based DRM of
the era (including the authors' own earlier design): licences name an
account, payment is a ledger debit, transfers are re-registrations
naming both parties.  This package implements that baseline **on the
same substrates** (same crypto, same stores, same devices), so every
measured difference in the experiments is attributable to the privacy
layer and not to incidental implementation drift.

- :mod:`repro.baseline.identity_drm` — the baseline provider and user;
- :mod:`repro.baseline.tracking` — what an honest-but-curious operator
  extracts from the baseline's own records (the paper's §1 threat
  list, made executable).
"""

from .identity_drm import BaselineProvider, BaselineUser
from .tracking import ProfileBuilder, UserProfile

__all__ = ["BaselineProvider", "BaselineUser", "ProfileBuilder", "UserProfile"]
