"""What the operator's own records reveal — the paper's §1 threat list,
made executable.

The paper motivates P2DRM by listing what conventional DRM lets a
distributor collect: complete purchase histories, transfer
relationships, payment amounts, all keyed by identity.  This module
*builds those dossiers* from a provider's licence register and audit
log — run it against the baseline and you get rich profiles; run it
against the P2DRM provider and the same code returns one-licence
pseudonym shards and no user names.  Experiments E8/E10 report the
difference.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class UserProfile:
    """Everything the operator can pin on one holder key."""

    holder: bytes
    display: str
    contents: list[str] = field(default_factory=list)
    license_count: int = 0
    first_seen: int | None = None
    last_seen: int | None = None
    total_spent: int = 0

    @property
    def span_seconds(self) -> int:
        if self.first_seen is None or self.last_seen is None:
            return 0
        return self.last_seen - self.first_seen


@dataclass
class TrackingReport:
    """The operator's aggregate knowledge."""

    profiles: dict[bytes, UserProfile]
    transfer_edges: list[tuple[str, str, str]]   # (from, to, content)
    identified: bool                             # holders are user ids?

    @property
    def profile_count(self) -> int:
        return len(self.profiles)

    @property
    def max_profile_size(self) -> int:
        return max((p.license_count for p in self.profiles.values()), default=0)

    @property
    def mean_profile_size(self) -> float:
        if not self.profiles:
            return 0.0
        return sum(p.license_count for p in self.profiles.values()) / len(self.profiles)

    @property
    def named_edges(self) -> int:
        """Transfer edges where both endpoints are user names."""
        return len(self.transfer_edges)

    def summary(self) -> dict:
        return {
            "identified": self.identified,
            "profiles": self.profile_count,
            "max_profile": self.max_profile_size,
            "mean_profile": round(self.mean_profile_size, 3),
            "transfer_edges": self.named_edges,
        }


class ProfileBuilder:
    """Honest-but-curious mining of a provider's stores."""

    def __init__(self, provider):
        self._provider = provider

    def build(self) -> TrackingReport:
        """Assemble profiles from the licence register and audit log."""
        profiles: dict[bytes, UserProfile] = {}
        identified = False
        register = self._provider.license_register
        # Walk every licence the provider ever handed to a holder —
        # direct sales and redemptions of anonymous licences alike.
        for event in self._provider.audit_log.entries():
            if event.event not in ("license_issued", "license_redeemed"):
                continue
            payload = event.payload
            license_id = bytes(payload["license"])
            record = register.get(license_id)
            if record is None or record.holder is None:
                continue
            holder = record.holder
            if "user" in payload:
                identified = True
                display = str(payload["user"])
            else:
                display = f"pseudonym:{holder.hex()[:12]}"
            profile = profiles.get(holder)
            if profile is None:
                profile = UserProfile(holder=holder, display=display)
                profiles[holder] = profile
            profile.contents.append(record.content_id)
            profile.license_count += 1
            moment = event.at
            if profile.first_seen is None or moment < profile.first_seen:
                profile.first_seen = moment
            if profile.last_seen is None or moment > profile.last_seen:
                profile.last_seen = moment
            profile.total_spent += int(payload.get("price", 0))

        edges: list[tuple[str, str, str]] = []
        for event in self._provider.audit_log.entries(event="license_transferred"):
            payload = event.payload
            edges.append(
                (str(payload["from"]), str(payload["to"]), str(payload["content"]))
            )
        return TrackingReport(
            profiles=profiles, transfer_edges=edges, identified=identified
        )
