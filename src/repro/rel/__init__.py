"""Rights Expression Language (REL) for P2DRM licences.

Licences in the 2004 paper carry a "rights expression" — which actions
the holder may perform, under which constraints.  The paper treats the
language as a given (industrial systems of the era used XrML or
ODRL); this package implements a compact REL with the constraint types
those languages supported and DRM devices actually enforced:

- actions: ``play``, ``display``, ``print``, ``copy``, ``transfer``,
  ``export``, ``burn``;
- constraints: use counts, validity intervals, device binding,
  region binding.

The pieces:

- :mod:`repro.rel.model` — the data model (:class:`Rights`,
  :class:`Permission`, constraint classes);
- :mod:`repro.rel.parser` — a compact text grammar
  (``"play[count<=10, before=2005-01-01T00:00:00Z]; transfer"``);
- :mod:`repro.rel.evaluator` — stateful authorization decisions with
  injected clock and usage state;
- :mod:`repro.rel.serializer` — the canonical byte form covered by
  licence signatures.
"""

from .model import (
    ACTIONS,
    CountConstraint,
    DeviceConstraint,
    IntervalConstraint,
    Permission,
    RegionConstraint,
    Rights,
)
from .parser import parse_rights
from .evaluator import EvaluationContext, RightsEvaluator, UsageState
from .serializer import rights_to_bytes, rights_from_bytes, rights_to_text

__all__ = [
    "ACTIONS",
    "Rights",
    "Permission",
    "CountConstraint",
    "IntervalConstraint",
    "DeviceConstraint",
    "RegionConstraint",
    "parse_rights",
    "RightsEvaluator",
    "EvaluationContext",
    "UsageState",
    "rights_to_bytes",
    "rights_from_bytes",
    "rights_to_text",
]
