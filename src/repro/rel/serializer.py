"""Canonical and human-readable serialization of rights expressions.

:func:`rights_to_bytes` is the form covered by licence signatures —
it round-trips through :mod:`repro.codec`, so a rights expression has
exactly one byte representation.  :func:`rights_to_text` renders the
parser grammar back out (``parse_rights(rights_to_text(r)) == r``),
which devices use to *display* rights to users.
"""

from __future__ import annotations

from .. import codec
from ..errors import RightsParseError
from .model import (
    CountConstraint,
    DeviceConstraint,
    IntervalConstraint,
    Permission,
    RegionConstraint,
    Rights,
)
from .parser import format_timestamp


def rights_to_bytes(rights: Rights) -> bytes:
    """Canonical byte encoding (the signed form)."""
    return codec.encode(rights.as_dict())


def rights_from_bytes(data: bytes) -> Rights:
    """Decode :func:`rights_to_bytes` output.

    Raises :class:`~repro.errors.RightsParseError` when the bytes are
    valid codec but not a valid rights expression.
    """
    decoded = codec.decode(data)
    if not isinstance(decoded, dict):
        raise RightsParseError("rights encoding must be a dict")
    return Rights.from_dict(decoded)


def _constraint_to_text(constraint) -> list[str]:
    if isinstance(constraint, CountConstraint):
        return [f"count<={constraint.max_uses}"]
    if isinstance(constraint, IntervalConstraint):
        parts = []
        if constraint.not_before is not None:
            parts.append(f"after={format_timestamp(constraint.not_before)}")
        if constraint.not_after is not None:
            parts.append(f"before={format_timestamp(constraint.not_after)}")
        return parts
    if isinstance(constraint, DeviceConstraint):
        return [f"device={'|'.join(sorted(constraint.device_ids))}"]
    if isinstance(constraint, RegionConstraint):
        return [f"region={'|'.join(sorted(constraint.regions))}"]
    raise RightsParseError(f"unknown constraint {constraint!r}")


def _permission_to_text(permission: Permission) -> str:
    if not permission.constraints:
        return permission.action
    parts: list[str] = []
    for constraint in permission.constraints:
        parts.extend(_constraint_to_text(constraint))
    return f"{permission.action}[{', '.join(parts)}]"


def rights_to_text(rights: Rights) -> str:
    """Render the parser grammar (lossless round-trip)."""
    return "; ".join(_permission_to_text(p) for p in rights.permissions)
