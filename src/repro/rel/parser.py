"""Compact text grammar for rights expressions.

Grammar (whitespace-insensitive)::

    rights      := permission ( ";" permission )*
    permission  := ACTION [ "[" constraint ( "," constraint )* "]" ]
    constraint  := "count" "<=" INT
                 | "after"  "=" TIME
                 | "before" "=" TIME
                 | "device" "=" HEXID ( "|" HEXID )*
                 | "region" "=" CODE ( "|" CODE )*
    TIME        := ISO-8601 "YYYY-MM-DDTHH:MM:SSZ" | epoch seconds

Examples::

    play
    play[count<=10]; transfer[count<=1]
    play[after=2004-06-01T00:00:00Z, before=2005-06-01T00:00:00Z]
    copy[device=ab12|cd34]; play[region=eu|us]

``after``/``before`` on one action merge into a single interval
constraint.  The parser is the only place the text form is interpreted;
everything downstream works on the :class:`~repro.rel.model.Rights`
value.
"""

from __future__ import annotations

import re
from datetime import datetime, timezone

from ..errors import RightsParseError
from .model import (
    ACTIONS,
    Constraint,
    CountConstraint,
    DeviceConstraint,
    IntervalConstraint,
    Permission,
    RegionConstraint,
    Rights,
)

_ISO_RE = re.compile(r"^\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}Z$")


def parse_timestamp(text: str) -> int:
    """Parse ``TIME`` (ISO-8601 Zulu or epoch seconds) to epoch seconds."""
    text = text.strip()
    if _ISO_RE.match(text):
        moment = datetime.strptime(text, "%Y-%m-%dT%H:%M:%SZ")
        return int(moment.replace(tzinfo=timezone.utc).timestamp())
    if re.fullmatch(r"-?\d+", text):
        return int(text)
    raise RightsParseError(f"invalid timestamp {text!r}")


def format_timestamp(epoch: int) -> str:
    """Render epoch seconds as the grammar's ISO-8601 form."""
    moment = datetime.fromtimestamp(epoch, tz=timezone.utc)
    return moment.strftime("%Y-%m-%dT%H:%M:%SZ")


def _parse_constraints(body: str, action: str) -> tuple[Constraint, ...]:
    constraints: list[Constraint] = []
    not_before: int | None = None
    not_after: int | None = None
    for part in body.split(","):
        part = part.strip()
        if not part:
            raise RightsParseError(f"empty constraint on {action!r}")
        if part.startswith("count"):
            match = re.fullmatch(r"count\s*<=\s*(\d+)", part)
            if not match:
                raise RightsParseError(f"malformed count constraint {part!r}")
            constraints.append(CountConstraint(max_uses=int(match.group(1))))
        elif part.startswith("after"):
            match = re.fullmatch(r"after\s*=\s*(\S+)", part)
            if not match:
                raise RightsParseError(f"malformed after constraint {part!r}")
            if not_before is not None:
                raise RightsParseError(f"duplicate 'after' on {action!r}")
            not_before = parse_timestamp(match.group(1))
        elif part.startswith("before"):
            match = re.fullmatch(r"before\s*=\s*(\S+)", part)
            if not match:
                raise RightsParseError(f"malformed before constraint {part!r}")
            if not_after is not None:
                raise RightsParseError(f"duplicate 'before' on {action!r}")
            not_after = parse_timestamp(match.group(1))
        elif part.startswith("device"):
            match = re.fullmatch(r"device\s*=\s*([0-9a-f|]+)", part)
            if not match:
                raise RightsParseError(f"malformed device constraint {part!r}")
            ids = frozenset(x for x in match.group(1).split("|") if x)
            constraints.append(DeviceConstraint(device_ids=ids))
        elif part.startswith("region"):
            match = re.fullmatch(r"region\s*=\s*([a-z|]+)", part)
            if not match:
                raise RightsParseError(f"malformed region constraint {part!r}")
            codes = frozenset(x for x in match.group(1).split("|") if x)
            constraints.append(RegionConstraint(regions=codes))
        else:
            raise RightsParseError(f"unknown constraint {part!r} on {action!r}")
    if not_before is not None or not_after is not None:
        constraints.append(
            IntervalConstraint(not_before=not_before, not_after=not_after)
        )
    return tuple(constraints)


def parse_rights(text: str) -> Rights:
    """Parse the compact grammar into a :class:`~repro.rel.model.Rights`.

    Raises :class:`~repro.errors.RightsParseError` with a pointed
    message on any malformed input.
    """
    if not isinstance(text, str) or not text.strip():
        raise RightsParseError("empty rights expression")
    permissions: list[Permission] = []
    for clause in text.split(";"):
        clause = clause.strip()
        if not clause:
            raise RightsParseError("empty permission clause")
        match = re.fullmatch(r"([a-z]+)\s*(?:\[(.*)\])?", clause, re.DOTALL)
        if not match:
            raise RightsParseError(f"malformed permission clause {clause!r}")
        action, body = match.group(1), match.group(2)
        if action not in ACTIONS:
            raise RightsParseError(f"unknown action {action!r}")
        constraints = _parse_constraints(body, action) if body is not None else ()
        permissions.append(Permission(action=action, constraints=constraints))
    return Rights(permissions=tuple(permissions))
