"""REL data model: rights, permissions, constraints.

A :class:`Rights` value is an immutable set of :class:`Permission`
grants; each permission names one action and zero or more constraints,
all of which must hold for the action to be authorized.  Everything
here is a frozen dataclass with a canonical dict form, so rights can be
hashed, compared, embedded in licences and covered by signatures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from ..errors import RightsParseError

#: Actions known to the language, in canonical order.
ACTIONS: tuple[str, ...] = (
    "play",
    "display",
    "print",
    "copy",
    "transfer",
    "export",
    "burn",
)

#: Actions that consume the licence when exercised (transfer semantics).
CONSUMING_ACTIONS: frozenset[str] = frozenset({"transfer", "burn"})


@dataclass(frozen=True)
class CountConstraint:
    """At most ``max_uses`` exercises of the action, ever."""

    max_uses: int

    def __post_init__(self) -> None:
        if self.max_uses < 1:
            raise RightsParseError("count constraint must allow at least one use")

    def as_dict(self) -> dict[str, Any]:
        return {"type": "count", "max": self.max_uses}


@dataclass(frozen=True)
class IntervalConstraint:
    """Action valid only within ``[not_before, not_after]`` (epoch seconds).

    Either bound may be ``None`` (open-ended).
    """

    not_before: int | None = None
    not_after: int | None = None

    def __post_init__(self) -> None:
        if self.not_before is None and self.not_after is None:
            raise RightsParseError("interval constraint needs at least one bound")
        if (
            self.not_before is not None
            and self.not_after is not None
            and self.not_before > self.not_after
        ):
            raise RightsParseError("interval constraint is empty")

    def as_dict(self) -> dict[str, Any]:
        return {"type": "interval", "after": self.not_before, "before": self.not_after}


@dataclass(frozen=True)
class DeviceConstraint:
    """Action allowed only on the listed device identifiers (hex fingerprints)."""

    device_ids: frozenset[str]

    def __post_init__(self) -> None:
        if not self.device_ids:
            raise RightsParseError("device constraint must list at least one device")
        for device_id in self.device_ids:
            if not device_id or any(c not in "0123456789abcdef" for c in device_id):
                raise RightsParseError(
                    f"device id must be lowercase hex, got {device_id!r}"
                )

    def as_dict(self) -> dict[str, Any]:
        return {"type": "device", "ids": sorted(self.device_ids)}


@dataclass(frozen=True)
class RegionConstraint:
    """Action allowed only in the listed region codes (e.g. ``eu``, ``us``)."""

    regions: frozenset[str]

    def __post_init__(self) -> None:
        if not self.regions:
            raise RightsParseError("region constraint must list at least one region")
        for region in self.regions:
            if not region.isalpha() or not region.islower() or len(region) > 8:
                raise RightsParseError(f"invalid region code {region!r}")

    def as_dict(self) -> dict[str, Any]:
        return {"type": "region", "codes": sorted(self.regions)}


Constraint = CountConstraint | IntervalConstraint | DeviceConstraint | RegionConstraint

# Canonical ordering of constraint types within a permission.
_CONSTRAINT_ORDER = {"count": 0, "interval": 1, "device": 2, "region": 3}


def constraint_from_dict(data: dict[str, Any]) -> Constraint:
    """Rebuild a constraint from its dict form."""
    kind = data.get("type")
    if kind == "count":
        return CountConstraint(max_uses=int(data["max"]))
    if kind == "interval":
        after = data.get("after")
        before = data.get("before")
        return IntervalConstraint(
            not_before=None if after is None else int(after),
            not_after=None if before is None else int(before),
        )
    if kind == "device":
        return DeviceConstraint(device_ids=frozenset(data["ids"]))
    if kind == "region":
        return RegionConstraint(regions=frozenset(data["codes"]))
    raise RightsParseError(f"unknown constraint type {kind!r}")


@dataclass(frozen=True)
class Permission:
    """One granted action with its conjunction of constraints."""

    action: str
    constraints: tuple[Constraint, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise RightsParseError(f"unknown action {self.action!r}")
        seen_types = set()
        for constraint in self.constraints:
            kind = constraint.as_dict()["type"]
            if kind in seen_types:
                raise RightsParseError(
                    f"duplicate {kind!r} constraint on action {self.action!r}"
                )
            seen_types.add(kind)
        # Freeze a canonical constraint order so equal permissions compare equal.
        ordered = tuple(
            sorted(self.constraints, key=lambda c: _CONSTRAINT_ORDER[c.as_dict()["type"]])
        )
        object.__setattr__(self, "constraints", ordered)

    def max_count(self) -> int | None:
        """The count bound if present, else ``None`` (unlimited)."""
        for constraint in self.constraints:
            if isinstance(constraint, CountConstraint):
                return constraint.max_uses
        return None

    def as_dict(self) -> dict[str, Any]:
        return {
            "action": self.action,
            "constraints": [c.as_dict() for c in self.constraints],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Permission":
        return cls(
            action=data["action"],
            constraints=tuple(
                constraint_from_dict(c) for c in data.get("constraints", ())
            ),
        )


@dataclass(frozen=True)
class Rights:
    """An immutable rights expression: the set of granted permissions."""

    permissions: tuple[Permission, ...]

    def __post_init__(self) -> None:
        if not self.permissions:
            raise RightsParseError("rights must grant at least one permission")
        actions = [p.action for p in self.permissions]
        if len(set(actions)) != len(actions):
            raise RightsParseError("duplicate action in rights expression")
        ordered = tuple(
            sorted(self.permissions, key=lambda p: ACTIONS.index(p.action))
        )
        object.__setattr__(self, "permissions", ordered)

    def permission_for(self, action: str) -> Permission | None:
        """The permission granting ``action``, or ``None``."""
        for permission in self.permissions:
            if permission.action == action:
                return permission
        return None

    @property
    def transferable(self) -> bool:
        """Whether the paper's transfer protocol applies to this licence."""
        return self.permission_for("transfer") is not None

    def without_action(self, action: str) -> "Rights":
        """A copy with ``action`` removed (used when rights are restricted
        on transfer, e.g. the anonymous licence drops ``transfer`` itself)."""
        remaining = tuple(p for p in self.permissions if p.action != action)
        if not remaining:
            raise RightsParseError("cannot remove the last permission")
        return Rights(permissions=remaining)

    def restricted_to(self, actions: Iterable[str]) -> "Rights":
        """A copy keeping only the listed actions (monotone restriction)."""
        wanted = set(actions)
        remaining = tuple(p for p in self.permissions if p.action in wanted)
        if not remaining:
            raise RightsParseError("restriction removes every permission")
        return Rights(permissions=remaining)

    def is_subset_of(self, other: "Rights") -> bool:
        """True when every grant here also appears (identically) in ``other``.

        Used to check that a redeemed licence never *widens* the rights
        of the anonymous licence it came from.
        """
        return all(
            other.permission_for(p.action) == p for p in self.permissions
        )

    def as_dict(self) -> dict[str, Any]:
        return {"permissions": [p.as_dict() for p in self.permissions]}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Rights":
        return cls(
            permissions=tuple(Permission.from_dict(p) for p in data["permissions"])
        )
