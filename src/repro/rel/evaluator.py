"""Stateful rights evaluation — the device-side enforcement point.

A compliant device calls :meth:`RightsEvaluator.authorize` before every
render and :meth:`RightsEvaluator.record_use` after a successful one.
Authorization is a pure function of the rights expression, the
:class:`EvaluationContext` (what/where/when) and the accumulated
:class:`UsageState` (how often already) — no hidden globals, no wall
clock, so devices, tests and simulations all evaluate identically.

Denials raise :class:`~repro.errors.RightsDenied` carrying a
machine-readable reason (FIP "openness": the user is told *why*).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import RightsDenied
from .model import (
    CountConstraint,
    DeviceConstraint,
    IntervalConstraint,
    Permission,
    RegionConstraint,
    Rights,
)


@dataclass(frozen=True)
class EvaluationContext:
    """Everything outside the licence that a decision depends on."""

    now: int
    device_id: str = ""
    region: str = ""


@dataclass
class UsageState:
    """Accumulated use counters, keyed by ``(licence_id, action)``.

    Devices persist this (see :mod:`repro.storage`); the evaluator only
    needs mapping semantics, so tests can use a bare instance.
    """

    counts: dict[tuple[bytes, str], int] = field(default_factory=dict)

    def uses(self, licence_id: bytes, action: str) -> int:
        return self.counts.get((licence_id, action), 0)

    def record(self, licence_id: bytes, action: str) -> int:
        """Increment and return the new count."""
        key = (licence_id, action)
        self.counts[key] = self.counts.get(key, 0) + 1
        return self.counts[key]

    def merge_from(self, other: "UsageState") -> None:
        """Pointwise-max merge (device sync never *forgets* uses)."""
        for key, count in other.counts.items():
            if count > self.counts.get(key, 0):
                self.counts[key] = count


class RightsEvaluator:
    """Authorization decisions over rights expressions."""

    def __init__(self, usage: UsageState | None = None):
        self.usage = usage if usage is not None else UsageState()

    def authorize(
        self,
        rights: Rights,
        licence_id: bytes,
        action: str,
        context: EvaluationContext,
    ) -> Permission:
        """Check that ``action`` is currently permitted.

        Returns the matching permission on success; raises
        :class:`~repro.errors.RightsDenied` otherwise.  Does **not**
        consume a use — call :meth:`record_use` after the action
        actually succeeds, so failed renders don't burn plays.
        """
        permission = rights.permission_for(action)
        if permission is None:
            raise RightsDenied(action, "action not granted by licence")
        for constraint in permission.constraints:
            self._check_constraint(constraint, licence_id, action, context)
        return permission

    def record_use(self, licence_id: bytes, action: str) -> int:
        """Record one successful exercise; returns the new total."""
        return self.usage.record(licence_id, action)

    def remaining_uses(
        self, rights: Rights, licence_id: bytes, action: str
    ) -> int | None:
        """Uses left under a count constraint, or ``None`` if unlimited."""
        permission = rights.permission_for(action)
        if permission is None:
            return 0
        maximum = permission.max_count()
        if maximum is None:
            return None
        return max(0, maximum - self.usage.uses(licence_id, action))

    # ------------------------------------------------------------------

    def _check_constraint(
        self,
        constraint,
        licence_id: bytes,
        action: str,
        context: EvaluationContext,
    ) -> None:
        if isinstance(constraint, CountConstraint):
            used = self.usage.uses(licence_id, action)
            if used >= constraint.max_uses:
                raise RightsDenied(
                    action,
                    f"use count exhausted ({used}/{constraint.max_uses})",
                )
        elif isinstance(constraint, IntervalConstraint):
            if constraint.not_before is not None and context.now < constraint.not_before:
                raise RightsDenied(
                    action,
                    f"not valid before t={constraint.not_before} (now t={context.now})",
                )
            if constraint.not_after is not None and context.now > constraint.not_after:
                raise RightsDenied(
                    action,
                    f"expired at t={constraint.not_after} (now t={context.now})",
                )
        elif isinstance(constraint, DeviceConstraint):
            if context.device_id not in constraint.device_ids:
                raise RightsDenied(
                    action,
                    f"device {context.device_id or '<unset>'} not among "
                    f"{len(constraint.device_ids)} bound device(s)",
                )
        elif isinstance(constraint, RegionConstraint):
            if context.region not in constraint.regions:
                raise RightsDenied(
                    action,
                    f"region {context.region or '<unset>'} not among "
                    f"{sorted(constraint.regions)}",
                )
        else:  # pragma: no cover - model guarantees exhaustiveness
            raise RightsDenied(action, f"unknown constraint {constraint!r}")
